"""Expression trees (factored forms) over AND/OR/XOR/NOT and literals.

Factorization in both flows produces these trees; `repro.network.build`
turns them into 2-input gate networks.  Operators are n-ary and the smart
constructors (:func:`and_`, :func:`or_`, :func:`xor_`, :func:`not_`) do the
cheap, always-sound simplifications: flattening, constant folding,
idempotence, complement cancellation and double negation.

Gate accounting follows the paper's convention (verified against Example 1,
t481): a k-ary AND or OR costs ``k-1`` 2-input gates, a k-ary XOR costs
``3*(k-1)`` (each 2-input XOR is worth three AND/OR gates), inverters are
free.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field


class Expr:
    """Base class for all expression nodes."""

    def support(self) -> int:
        raise NotImplementedError

    def evaluate(self, minterm: int) -> int:
        """Value (0/1) on an input minterm (bit i = value of variable i)."""
        raise NotImplementedError

    def two_input_gate_count(self) -> int:
        """Equivalent 2-input AND/OR gate count (paper's metric)."""
        raise NotImplementedError

    def format(self, names: Sequence[str] | None = None) -> str:
        raise NotImplementedError

    def children(self) -> tuple["Expr", ...]:
        return ()

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.format()


@dataclass(frozen=True)
class Const(Expr):
    value: bool

    def support(self) -> int:
        return 0

    def evaluate(self, minterm: int) -> int:
        return int(self.value)

    def two_input_gate_count(self) -> int:
        return 0

    def format(self, names: Sequence[str] | None = None) -> str:
        return "1" if self.value else "0"


TRUE = Const(True)
FALSE = Const(False)


@dataclass(frozen=True)
class Lit(Expr):
    var: int
    negated: bool = False

    def support(self) -> int:
        return 1 << self.var

    def evaluate(self, minterm: int) -> int:
        value = (minterm >> self.var) & 1
        return value ^ int(self.negated)

    def two_input_gate_count(self) -> int:
        return 0

    def format(self, names: Sequence[str] | None = None) -> str:
        name = names[self.var] if names else f"x{self.var}"
        return name + ("'" if self.negated else "")


@dataclass(frozen=True)
class Not(Expr):
    arg: Expr

    def support(self) -> int:
        return self.arg.support()

    def evaluate(self, minterm: int) -> int:
        return 1 - self.arg.evaluate(minterm)

    def two_input_gate_count(self) -> int:
        return self.arg.two_input_gate_count()

    def format(self, names: Sequence[str] | None = None) -> str:
        return f"({self.arg.format(names)})'"

    def children(self) -> tuple[Expr, ...]:
        return (self.arg,)


@dataclass(frozen=True)
class _Nary(Expr):
    args: tuple[Expr, ...] = field(default_factory=tuple)

    _symbol = "?"
    _per_gate = 1

    def support(self) -> int:
        mask = 0
        for arg in self.args:
            mask |= arg.support()
        return mask

    def two_input_gate_count(self) -> int:
        own = self._per_gate * (len(self.args) - 1)
        return own + sum(arg.two_input_gate_count() for arg in self.args)

    def format(self, names: Sequence[str] | None = None) -> str:
        parts = []
        for arg in self.args:
            text = arg.format(names)
            if isinstance(arg, _Nary) and _needs_parens(self, arg):
                text = f"({text})"
            parts.append(text)
        return self._symbol.join(parts)

    def children(self) -> tuple[Expr, ...]:
        return self.args


class And(_Nary):
    _symbol = "·"
    _per_gate = 1

    def evaluate(self, minterm: int) -> int:
        return int(all(arg.evaluate(minterm) for arg in self.args))


class Or(_Nary):
    _symbol = " + "
    _per_gate = 1

    def evaluate(self, minterm: int) -> int:
        return int(any(arg.evaluate(minterm) for arg in self.args))


class Xor(_Nary):
    _symbol = " ⊕ "
    _per_gate = 3

    def evaluate(self, minterm: int) -> int:
        value = 0
        for arg in self.args:
            value ^= arg.evaluate(minterm)
        return value


def _install_cached_hash(cls, compute):
    """Replace the generated dataclass hash with a per-object cached one.

    Factored/OFDD-derived expressions are DAGs with heavy sharing; the
    generated hash walks the whole (exponentially expanded) tree on every
    call.  Caching makes hashing amortized O(1) per node, which the smart
    constructors rely on.
    """

    def cached_hash(self):
        # Plain attribute access beats a __dict__.get probe on the hot
        # (already cached) path; the AttributeError fires once per object.
        try:
            return self._cached_hash
        except AttributeError:
            value = compute(self)
            object.__setattr__(self, "_cached_hash", value)
            return value

    cls.__hash__ = cached_hash


_install_cached_hash(Const, lambda s: hash((Const, s.value)))
_install_cached_hash(Lit, lambda s: hash((Lit, s.var, s.negated)))
_install_cached_hash(Not, lambda s: hash((Not, s.arg)))
_install_cached_hash(And, lambda s: hash((And, s.args)))
_install_cached_hash(Or, lambda s: hash((Or, s.args)))
_install_cached_hash(Xor, lambda s: hash((Xor, s.args)))


_PRECEDENCE = {And: 3, Xor: 2, Or: 1}


def _needs_parens(parent: _Nary, child: _Nary) -> bool:
    return _PRECEDENCE[type(child)] <= _PRECEDENCE[type(parent)]


# -- smart constructors ------------------------------------------------------


def lit(var: int, negated: bool = False) -> Lit:
    return Lit(var, negated)


def not_(arg: Expr) -> Expr:
    if isinstance(arg, Const):
        return Const(not arg.value)
    if isinstance(arg, Not):
        return arg.arg
    if isinstance(arg, Lit):
        return Lit(arg.var, not arg.negated)
    return Not(arg)


def _complement_key(expr: Expr) -> tuple | None:
    """A hashable key identifying expr up to complementation, plus phase."""
    if isinstance(expr, Not):
        return ("n", expr.arg)
    if isinstance(expr, Lit):
        return ("l", expr.var, expr.negated)
    return None


def and_(args: Iterable[Expr]) -> Expr:
    flat: list[Expr] = []
    seen: set[Expr] = set()
    for arg in _flatten(args, And):
        if isinstance(arg, Const):
            if not arg.value:
                return FALSE
            continue
        if arg in seen:
            continue
        if not_(arg) in seen:
            return FALSE
        seen.add(arg)
        flat.append(arg)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def or_(args: Iterable[Expr]) -> Expr:
    flat: list[Expr] = []
    seen: set[Expr] = set()
    for arg in _flatten(args, Or):
        if isinstance(arg, Const):
            if arg.value:
                return TRUE
            continue
        if arg in seen:
            continue
        if not_(arg) in seen:
            return TRUE
        seen.add(arg)
        flat.append(arg)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def xor_(args: Iterable[Expr]) -> Expr:
    invert = False
    counts: dict[Expr, int] = {}
    order: list[Expr] = []
    for arg in _flatten(args, Xor):
        if isinstance(arg, Const):
            invert ^= arg.value
            continue
        if isinstance(arg, Not):
            invert = not invert
            arg = arg.arg
        elif isinstance(arg, Lit) and arg.negated:
            invert = not invert
            arg = Lit(arg.var, False)
        if arg not in counts:
            counts[arg] = 0
            order.append(arg)
        counts[arg] ^= 1
    flat = [arg for arg in order if counts[arg]]
    if not flat:
        return TRUE if invert else FALSE
    if len(flat) == 1:
        result: Expr = flat[0]
    else:
        result = Xor(tuple(flat))
    return not_(result) if invert else result


def xor2(a: Expr, b: Expr) -> Expr:
    """Binary XOR that preserves association structure.

    Unlike :func:`xor_`, nested XOR operands are *not* flattened, so a
    factorization that pairs shared-support subexpressions keeps that
    pairing through tree conversion — the redundancy analysis operates on
    exactly the gates the factorizer built (paper Step 5).  Negations are
    still pulled out (inverters are free) and constants folded.
    """
    invert = False
    if isinstance(a, Const):
        return not_(b) if a.value else b
    if isinstance(b, Const):
        return not_(a) if b.value else a
    if isinstance(a, Not):
        invert = not invert
        a = a.arg
    elif isinstance(a, Lit) and a.negated:
        invert = not invert
        a = Lit(a.var)
    if isinstance(b, Not):
        invert = not invert
        b = b.arg
    elif isinstance(b, Lit) and b.negated:
        invert = not invert
        b = Lit(b.var)
    if a == b:
        result: Expr = FALSE
    else:
        result = Xor((a, b))
    return not_(result) if invert else result


def xor_join(parts: list[Expr]) -> Expr:
    """Balanced binary XOR tree over ``parts`` built with :func:`xor2`."""
    parts = [p for p in parts if not (isinstance(p, Const) and not p.value)]
    if not parts:
        return FALSE
    while len(parts) > 1:
        merged = []
        for i in range(0, len(parts) - 1, 2):
            merged.append(xor2(parts[i], parts[i + 1]))
        if len(parts) % 2:
            merged.append(parts[-1])
        parts = merged
    return parts[0]


def xor_chain(parts: list[Expr]) -> Expr:
    """Right-nested XOR chain over ``parts`` built with :func:`xor2`.

    Chains expose common *suffixes*: two cube groups that share a tail
    produce structurally identical subtrees, which the network's structural
    hashing then merges (valuable for symmetric functions, whose outputs
    share long XOR sums).  Balanced joins (:func:`xor_join`) are kept for
    the paper's top-level group join, where operands are disjoint anyway.
    """
    parts = [p for p in parts if not (isinstance(p, Const) and not p.value)]
    if not parts:
        return FALSE
    result = parts[-1]
    for part in reversed(parts[:-1]):
        result = xor2(part, result)
    return result


def _flatten(args: Iterable[Expr], kind: type) -> Iterable[Expr]:
    for arg in args:
        if type(arg) is kind:
            yield from arg.args
        else:
            yield arg


def expr_size(expr: Expr) -> int:
    """Total node count of the tree (for diagnostics)."""
    return 1 + sum(expr_size(child) for child in expr.children())
