"""Boolean-function syntax: cubes, covers, FPRM forms, expression trees."""

from repro.expr.cube import Cube
from repro.expr.cover import Cover
from repro.expr.esop import EsopCover, FprmForm
from repro.expr.expression import (
    FALSE,
    TRUE,
    And,
    Const,
    Expr,
    Lit,
    Not,
    Or,
    Xor,
    and_,
    lit,
    not_,
    or_,
    xor_,
)

__all__ = [
    "And",
    "Const",
    "Cover",
    "Cube",
    "EsopCover",
    "Expr",
    "FALSE",
    "FprmForm",
    "Lit",
    "Not",
    "Or",
    "TRUE",
    "Xor",
    "and_",
    "lit",
    "not_",
    "or_",
    "xor_",
]
