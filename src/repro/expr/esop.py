"""Exclusive-or sums of products; fixed-polarity Reed-Muller forms.

An :class:`EsopCover` is an XOR-connected list of :class:`~repro.expr.cube.Cube`
objects.  A :class:`FprmForm` is the restricted canonical case the paper
works with — every variable carries one fixed polarity across all cubes, so
each cube is just a mask of *which* variables appear, and the polarity
vector says *how* each appears.  The constant-1 cube is the empty mask.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.errors import DimensionError
from repro.expr.cube import Cube
from repro.utils.bitops import bit_indices, popcount


@dataclass(frozen=True)
class EsopCover:
    """General ESOP: XOR of arbitrary-polarity cubes."""

    n: int
    cubes: tuple[Cube, ...] = field(default_factory=tuple)

    def evaluate(self, minterm: int) -> int:
        value = 0
        for cube in self.cubes:
            value ^= int(cube.contains_minterm(minterm))
        return value

    @property
    def num_cubes(self) -> int:
        return len(self.cubes)

    @property
    def num_literals(self) -> int:
        return sum(cube.num_literals for cube in self.cubes)

    def format(self, names: list[str] | None = None) -> str:
        if not self.cubes:
            return "0"
        return " ⊕ ".join(cube.format(names) for cube in self.cubes)


@dataclass(frozen=True)
class FprmForm:
    """A fixed-polarity Reed-Muller form.

    ``polarity`` has bit ``i`` set when variable ``i`` appears positively
    (the paper's polarity-vector entry 1) and clear when it appears
    complemented.  ``cubes`` are variable-set masks; mask ``0`` is the
    constant-1 cube.  The form is canonical for a given polarity vector.
    """

    n: int
    polarity: int
    cubes: tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        universe = (1 << self.n) - 1
        if self.polarity & ~universe:
            raise ValueError("polarity vector wider than the universe")
        seen: set[int] = set()
        for mask in self.cubes:
            if mask & ~universe:
                raise ValueError("cube mask wider than the universe")
            if mask in seen:
                raise ValueError(f"duplicate FPRM cube {mask:#x}")
            seen.add(mask)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_masks(cls, n: int, polarity: int, masks: Iterable[int]) -> "FprmForm":
        return cls(n, polarity, tuple(sorted(set(masks))))

    @classmethod
    def zero(cls, n: int, polarity: int = ~0) -> "FprmForm":
        return cls(n, polarity & ((1 << n) - 1), ())

    # -- queries -----------------------------------------------------------

    @property
    def num_cubes(self) -> int:
        return len(self.cubes)

    @property
    def num_literals(self) -> int:
        return sum(popcount(mask) for mask in self.cubes)

    @property
    def support(self) -> int:
        mask = 0
        for cube in self.cubes:
            mask |= cube
        return mask

    @property
    def has_constant_cube(self) -> bool:
        """True when the constant-1 cube is present (implemented as a PO
        inverter per the paper's assumption (2))."""
        return 0 in self.cubes

    def is_zero(self) -> bool:
        return not self.cubes

    def literal_minterm(self, minterm: int) -> int:
        """Translate a PI minterm into literal values (bit i = literal i)."""
        return (minterm ^ ~self.polarity) & ((1 << self.n) - 1)

    def pi_pattern(self, literal_pattern: int) -> int:
        """Translate a literal-value pattern back into a PI minterm."""
        return (literal_pattern ^ ~self.polarity) & ((1 << self.n) - 1)

    def evaluate(self, minterm: int) -> int:
        """Value on a PI minterm (bit i of ``minterm`` = value of x_i)."""
        literals = self.literal_minterm(minterm)
        value = 0
        for mask in self.cubes:
            if (literals & mask) == mask:
                value ^= 1
        return value

    def cube_objects(self) -> tuple[Cube, ...]:
        """Cubes as full :class:`Cube` objects with explicit polarities."""
        out = []
        for mask in self.cubes:
            pos = mask & self.polarity
            neg = mask & ~self.polarity & ((1 << self.n) - 1)
            out.append(Cube(self.n, pos, neg))
        return tuple(out)

    def to_esop(self) -> EsopCover:
        return EsopCover(self.n, self.cube_objects())

    # -- rendering ---------------------------------------------------------

    def format(self, names: list[str] | None = None) -> str:
        if not self.cubes:
            return "0"
        parts = []
        for mask in self.cubes:
            if mask == 0:
                parts.append("1")
                continue
            lits = []
            for var in bit_indices(mask):
                name = names[var] if names else f"x{var}"
                if (self.polarity >> var) & 1:
                    lits.append(name)
                else:
                    lits.append(name + "'")
            parts.append("·".join(lits))
        return " ⊕ ".join(parts)

    def _check(self, other: "FprmForm") -> None:
        if self.n != other.n:
            raise DimensionError("FPRM width mismatch")
        if self.polarity != other.polarity:
            raise ValueError("FPRM polarity mismatch")

    def xor(self, other: "FprmForm") -> "FprmForm":
        """XOR of two same-polarity forms (symmetric difference of cubes)."""
        self._check(other)
        return FprmForm.from_masks(
            self.n, self.polarity, set(self.cubes) ^ set(other.cubes)
        )
