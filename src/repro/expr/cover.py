"""SOP covers: OR-connected lists of cubes over a fixed universe.

This is the two-level currency of the SIS-like baseline (`repro.sislite`)
and of PLA-style benchmark specifications.  Heavy optimization (espresso,
kernels) lives in `repro.sislite`; this module holds representation and the
cheap algebra both flows need.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.errors import DimensionError
from repro.expr.cube import Cube

#: Below this cover size the numpy setup cost of the matrix SCC scan
#: beats its win; the scalar loop stays in charge.  Pure perf cutoff —
#: both paths are bit-identical, so the threshold never changes results.
_KERNEL_MIN_CUBES = 8


@dataclass(frozen=True)
class Cover:
    """An SOP cover (list of cubes, OR-connected) over ``n`` variables."""

    n: int
    cubes: tuple[Cube, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for cube in self.cubes:
            if cube.n != self.n:
                raise DimensionError("cube width does not match cover width")

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_cubes(cls, n: int, cubes: Iterable[Cube]) -> "Cover":
        return cls(n, tuple(cubes))

    @classmethod
    def from_strings(cls, rows: Iterable[str]) -> "Cover":
        cubes = tuple(Cube.from_string(row) for row in rows)
        if not cubes:
            raise ValueError("cannot infer width from an empty string list")
        return cls(cubes[0].n, cubes)

    @classmethod
    def zero(cls, n: int) -> "Cover":
        return cls(n, ())

    @classmethod
    def one(cls, n: int) -> "Cover":
        return cls(n, (Cube.universe(n),))

    # -- queries -----------------------------------------------------------

    @property
    def num_cubes(self) -> int:
        return len(self.cubes)

    @property
    def num_literals(self) -> int:
        return sum(cube.num_literals for cube in self.cubes)

    @property
    def support(self) -> int:
        mask = 0
        for cube in self.cubes:
            mask |= cube.support
        return mask

    def is_zero(self) -> bool:
        return not self.cubes

    def is_one(self) -> bool:
        return any(cube.is_tautology() for cube in self.cubes)

    def evaluate(self, minterm: int) -> int:
        """Value of the cover (0/1) on one input minterm."""
        return int(any(cube.contains_minterm(minterm) for cube in self.cubes))

    def __iter__(self) -> Iterator[Cube]:
        return iter(self.cubes)

    def __len__(self) -> int:
        return len(self.cubes)

    # -- cheap algebra -----------------------------------------------------

    def single_cube_containment(self) -> "Cover":
        """Drop cubes contained in another single cube (SCC minimization)."""
        if len(self.cubes) >= _KERNEL_MIN_CUBES:
            # Deferred import: repro.expr.kernels imports Cover.
            from repro.expr.kernels import kernels_enabled, scc_cover

            if kernels_enabled():
                return scc_cover(self)
        kept: list[Cube] = []
        # Sorting by decreasing freedom makes the quadratic scan cheaper:
        # big cubes absorb small ones early.
        for cube in sorted(self.cubes, key=lambda c: c.num_literals):
            if not any(other.covers(cube) for other in kept):
                kept.append(cube)
        return Cover(self.n, tuple(kept))

    def cofactor(self, var: int, value: int) -> "Cover":
        cubes = []
        for cube in self.cubes:
            restricted = cube.restrict(var, value)
            if restricted is not None:
                cubes.append(restricted)
        return Cover(self.n, tuple(cubes))

    def cofactor_cube(self, cube: Cube) -> "Cover":
        cubes = []
        for own in self.cubes:
            reduced = own.cofactor_cube(cube)
            if reduced is not None:
                cubes.append(reduced)
        return Cover(self.n, tuple(cubes))

    def union(self, other: "Cover") -> "Cover":
        self._check(other)
        return Cover(self.n, self.cubes + other.cubes)

    def intersection(self, other: "Cover") -> "Cover":
        self._check(other)
        cubes = []
        for a in self.cubes:
            for b in other.cubes:
                meet = a.intersection(b)
                if meet is not None:
                    cubes.append(meet)
        return Cover(self.n, tuple(cubes)).single_cube_containment()

    def restrict_support(self, variables: list[int]) -> "Cover":
        """Re-express the cover over a smaller universe.

        ``variables[j]`` is the global index that becomes local variable
        ``j``.  Every cube literal must fall inside ``variables``.
        """
        pairs = [(1 << var, 1 << j) for j, var in enumerate(variables)]
        support_mask = sum(bit for bit, _ in pairs)
        width = len(variables)
        cubes = []
        for cube in self.cubes:
            pos = neg = 0
            for bit, local in pairs:
                if cube.pos & bit:
                    pos |= local
                if cube.neg & bit:
                    neg |= local
            if cube.support & ~support_mask:
                raise ValueError("cube uses a variable outside the new support")
            cubes.append(Cube(width, pos, neg))
        return Cover(width, tuple(cubes))

    def lift_support(self, n: int, variables: list[int]) -> "Cover":
        """Inverse of :meth:`restrict_support`: embed into ``n`` variables."""
        cubes = []
        for cube in self.cubes:
            pos = neg = 0
            for j, var in enumerate(variables):
                if (cube.pos >> j) & 1:
                    pos |= 1 << var
                if (cube.neg >> j) & 1:
                    neg |= 1 << var
            cubes.append(Cube(n, pos, neg))
        return Cover(n, tuple(cubes))

    # -- rendering ---------------------------------------------------------

    def format(self, names: list[str] | None = None) -> str:
        if not self.cubes:
            return "0"
        return " + ".join(cube.format(names) for cube in self.cubes)

    def _check(self, other: "Cover") -> None:
        if self.n != other.n:
            raise DimensionError(f"cover width mismatch: {self.n} vs {other.n}")
