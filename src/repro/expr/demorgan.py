"""Inverter minimization by De Morgan phase assignment.

Gate counting treats inverters as free, but they are real cells after
mapping and real switching nodes for the power estimate, so both flows run
this pass on their final expressions: every subexpression is computed in
whichever phase needs fewer inverters, with ``NOT(AND(…))`` re-expressed
as ``OR`` of complements (and vice versa) when that absorbs negations.
XOR absorbs any single complement for free (``ā⊕b = ¬(a⊕b)``).
"""

from __future__ import annotations

from repro.expr import expression as ex


def minimize_inverters(expr: ex.Expr) -> ex.Expr:
    """Phase-optimized rewrite of ``expr`` (function preserved)."""
    memo: dict[tuple[int, bool], tuple[ex.Expr, int]] = {}
    result, _cost = _phase(expr, False, memo)
    return result


def minimize_inverters_guarded(expr: ex.Expr, width: int) -> ex.Expr:
    """:func:`minimize_inverters` with a structural-sharing guard.

    The phase rewrite reasons over trees; on DAG-shaped expressions a node
    consumed in both phases can end up realized twice (once straight, once
    De-Morganed), losing structural sharing.  Build both versions into a
    hashed network and keep the rewrite only when it does not increase
    (gates, inverters).
    """
    rewritten = minimize_inverters(expr)
    if rewritten is expr:
        return expr
    if _network_cost(rewritten, width) <= _network_cost(expr, width):
        return rewritten
    return expr


def _network_cost(expr: ex.Expr, width: int) -> tuple[int, int]:
    from repro.network.netlist import GateType, Network

    net = Network(width)
    memo: dict[int, int] = {}

    def add(node: ex.Expr) -> int:
        cached = memo.get(id(node))
        if cached is not None:
            return cached
        if isinstance(node, ex.Const):
            result = net.const1 if node.value else net.const0
        elif isinstance(node, ex.Lit):
            pi = net.pi(node.var)
            result = net.add_not(pi) if node.negated else pi
        elif isinstance(node, ex.Not):
            result = net.add_not(add(node.arg))
        else:
            kids = [add(child) for child in node.children()]
            if isinstance(node, ex.And):
                result = net.add_and_tree(kids)
            elif isinstance(node, ex.Or):
                result = net.add_or_tree(kids)
            else:
                result = net.add_xor_tree(kids)
        memo[id(node)] = result
        return result

    net.set_outputs([add(expr)])
    gates = 0
    inverters = 0
    for n in net.live_nodes():
        kind = net.type_of(n)
        if kind is GateType.AND or kind is GateType.OR:
            gates += 1
        elif kind is GateType.XOR:
            gates += 3
        elif kind is GateType.NOT:
            inverters += 1
    return (gates, inverters)


def _phase(
    expr: ex.Expr, want_inverted: bool,
    memo: dict[tuple[int, bool], tuple[ex.Expr, int]],
) -> tuple[ex.Expr, int]:
    """(rewritten expr computing expr^want_inverted, inverter count)."""
    key = (id(expr), want_inverted)
    cached = memo.get(key)
    if cached is not None:
        return cached
    result = _phase_uncached(expr, want_inverted, memo)
    memo[key] = result
    return result


def _phase_uncached(expr, want_inverted, memo):
    if isinstance(expr, ex.Const):
        return (ex.Const(expr.value != want_inverted), 0)
    if isinstance(expr, ex.Lit):
        negated = expr.negated != want_inverted
        return (ex.Lit(expr.var, negated), 1 if negated else 0)
    if isinstance(expr, ex.Not):
        return _phase(expr.arg, not want_inverted, memo)
    if isinstance(expr, ex.Xor):
        # One child may absorb the inversion for free; give it to the child
        # that is cheaper inverted.
        children = list(expr.children())
        built = [_phase(child, False, memo) for child in children]
        cost = sum(c for _, c in built)
        if want_inverted:
            best_index = 0
            best_delta = None
            for index, child in enumerate(children):
                inverted_child, inverted_cost = _phase(child, True, memo)
                delta = inverted_cost - built[index][1]
                if best_delta is None or delta < best_delta:
                    best_delta = delta
                    best_index = index
                    best_child = (inverted_child, inverted_cost)
            parts = [b[0] for b in built]
            parts[best_index] = best_child[0]
            cost = cost + (best_delta or 0)
            return (ex.xor_join(parts) if len(parts) != 2
                    else ex.xor2(parts[0], parts[1]), cost)
        parts = [b[0] for b in built]
        return (ex.xor_join(parts) if len(parts) != 2
                else ex.xor2(parts[0], parts[1]), cost)
    # AND/OR: realize either directly or through De Morgan.
    is_and = isinstance(expr, ex.And)
    children = list(expr.children())
    straight = [_phase(child, want_inverted and False, memo)
                for child in children]
    flipped = [_phase(child, True, memo) for child in children]
    direct_cost = sum(c for _, c in straight)
    demorgan_cost = sum(c for _, c in flipped)
    direct_op = ex.and_ if is_and else ex.or_
    demorgan_op = ex.or_ if is_and else ex.and_
    if want_inverted:
        # ¬AND = OR of complements (demorgan, no inverter) vs NOT(AND).
        if demorgan_cost <= direct_cost + 1:
            return (demorgan_op([f for f, _ in flipped]), demorgan_cost)
        return (ex.not_(direct_op([s for s, _ in straight])),
                direct_cost + 1)
    if direct_cost <= demorgan_cost + 1:
        return (direct_op([s for s, _ in straight]), direct_cost)
    return (ex.not_(demorgan_op([f for f, _ in flipped])),
            demorgan_cost + 1)
