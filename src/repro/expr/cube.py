"""Cubes (product terms) over a fixed variable universe.

A cube is a conjunction of literals.  Variable ``i`` maps to bit ``1 << i``;
``pos`` holds the positive literals, ``neg`` the negative ones, and a
variable in neither mask is a don't-care for this cube.  Cubes are immutable
and hashable so covers can use set semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DimensionError
from repro.utils.bitops import bit_indices, popcount


@dataclass(frozen=True, slots=True)
class Cube:
    """A product term: ``pos``/``neg`` literal masks over ``n`` variables."""

    n: int
    pos: int = 0
    neg: int = 0

    def __post_init__(self) -> None:
        universe = (1 << self.n) - 1
        if self.pos & self.neg:
            raise ValueError(
                f"contradictory literals in cube: {self.pos & self.neg:#x}"
            )
        if (self.pos | self.neg) & ~universe:
            raise ValueError("literal outside the variable universe")

    # -- constructors ------------------------------------------------------

    @classmethod
    def universe(cls, n: int) -> "Cube":
        """The tautology cube (no literals)."""
        return cls(n)

    @classmethod
    def from_string(cls, text: str) -> "Cube":
        """Parse PLA-style cube text, e.g. ``"01-1"`` (char i = variable i)."""
        pos = neg = 0
        for i, ch in enumerate(text):
            if ch == "1":
                pos |= 1 << i
            elif ch == "0":
                neg |= 1 << i
            elif ch not in "-2":
                raise ValueError(f"bad cube character {ch!r}")
        return cls(len(text), pos, neg)

    @classmethod
    def from_minterm(cls, n: int, minterm: int) -> "Cube":
        """The full cube selecting exactly one minterm."""
        universe = (1 << n) - 1
        return cls(n, minterm & universe, ~minterm & universe)

    # -- basic queries -----------------------------------------------------

    @property
    def support(self) -> int:
        """Mask of variables this cube constrains."""
        return self.pos | self.neg

    @property
    def num_literals(self) -> int:
        return popcount(self.pos | self.neg)

    def is_tautology(self) -> bool:
        return self.pos == 0 and self.neg == 0

    def literal_sign(self, var: int) -> int | None:
        """+1 for positive, -1 for negative, ``None`` if absent."""
        bit = 1 << var
        if self.pos & bit:
            return 1
        if self.neg & bit:
            return -1
        return None

    def contains_minterm(self, minterm: int) -> bool:
        """True if the minterm (bit i = value of variable i) lies in the cube."""
        return (minterm & self.pos) == self.pos and (minterm & self.neg) == 0

    def covers(self, other: "Cube") -> bool:
        """True if every minterm of ``other`` is also in ``self``."""
        self._check(other)
        return (self.pos & other.pos) == self.pos and (
            self.neg & other.neg
        ) == self.neg

    def intersects(self, other: "Cube") -> bool:
        """True if the two cubes share at least one minterm."""
        self._check(other)
        return not (self.pos & other.neg or self.neg & other.pos)

    def intersection(self, other: "Cube") -> "Cube | None":
        """The cube of common minterms, or ``None`` if disjoint."""
        if not self.intersects(other):
            return None
        return Cube(self.n, self.pos | other.pos, self.neg | other.neg)

    def distance(self, other: "Cube") -> int:
        """Number of variables on which the cubes conflict."""
        self._check(other)
        return popcount((self.pos & other.neg) | (self.neg & other.pos))

    def consensus(self, other: "Cube") -> "Cube | None":
        """Single-variable consensus cube, or ``None`` if distance != 1."""
        conflict = (self.pos & other.neg) | (self.neg & other.pos)
        if popcount(conflict) != 1:
            return None
        return Cube(
            self.n,
            (self.pos | other.pos) & ~conflict,
            (self.neg | other.neg) & ~conflict,
        )

    # -- algebra -----------------------------------------------------------

    def without(self, var_mask: int) -> "Cube":
        """Drop all literals of the variables in ``var_mask``."""
        return Cube(self.n, self.pos & ~var_mask, self.neg & ~var_mask)

    def expand_literal(self, var: int) -> "Cube":
        """Drop one variable's literal (the EXPAND move of espresso)."""
        return self.without(1 << var)

    def restrict(self, var: int, value: int) -> "Cube | None":
        """Cofactor w.r.t. ``var = value``: ``None`` if the cube vanishes."""
        bit = 1 << var
        if value:
            if self.neg & bit:
                return None
        else:
            if self.pos & bit:
                return None
        return Cube(self.n, self.pos & ~bit, self.neg & ~bit)

    def cofactor_cube(self, other: "Cube") -> "Cube | None":
        """Generalized cofactor ``self / other`` (None if disjoint)."""
        if not self.intersects(other):
            return None
        return Cube(self.n, self.pos & ~other.pos, self.neg & ~other.neg)

    def minterm_count(self) -> int:
        """Number of minterms the cube covers."""
        return 1 << (self.n - self.num_literals)

    def minterms(self):
        """Yield all covered minterms (use only for small free sets)."""
        free = [i for i in range(self.n) if not (self.support >> i) & 1]
        for combo in range(1 << len(free)):
            minterm = self.pos
            for j, var in enumerate(free):
                if (combo >> j) & 1:
                    minterm |= 1 << var
            yield minterm

    # -- rendering ---------------------------------------------------------

    def to_string(self) -> str:
        """PLA-style text (``1``/``0``/``-`` per variable)."""
        chars = []
        for i in range(self.n):
            bit = 1 << i
            if self.pos & bit:
                chars.append("1")
            elif self.neg & bit:
                chars.append("0")
            else:
                chars.append("-")
        return "".join(chars)

    def format(self, names: list[str] | None = None) -> str:
        """Human-readable product, e.g. ``x0·x̄2``; ``1`` for the tautology."""
        if self.is_tautology():
            return "1"
        parts = []
        for var in sorted(bit_indices(self.support)):
            name = names[var] if names else f"x{var}"
            if (self.neg >> var) & 1:
                parts.append(name + "'")
            else:
                parts.append(name)
        return "·".join(parts)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_string()

    def _check(self, other: "Cube") -> None:
        if self.n != other.n:
            raise DimensionError(f"cube width mismatch: {self.n} vs {other.n}")
