"""Vectorized cube-algebra kernels: matrix covers over numpy bitmasks.

The scalar :class:`~repro.expr.cube.Cube`/:class:`~repro.expr.cover.Cover`
algebra is the semantic reference of the whole flow, but its pairwise
inner loops (single-cube containment, ESOP distance scans, exorlink
candidate enumeration) are O(k²) Python — the confirmed hot paths of
FPRM extraction and exorcism-style minimization.  This module holds the
batched counterparts: a :class:`CoverMatrix` stores a cover's pos/neg
literal masks as ``uint64`` word arrays (shape ``(k, words)``), and every
primitive is one broadcastable numpy expression over those words.

Semantics guarantee: every kernel computes *exactly* the relation its
scalar counterpart defines (containment as :meth:`Cube.covers`, distance
as :meth:`Cube.distance`, ESOP difference as the exorcism
``_difference_vars`` count, …).  Callers that rewrite covers keep the
scalar rewrite rules and use the kernels only to *select* work, so a
kernel-accelerated pass is bit-identical to the scalar pass — the
property the ``kernels-vs-scalar`` fuzz oracle enforces.

Kernel selection is ambient: :func:`set_kernels_enabled` (driven by
``SynthesisOptions.use_kernels`` / ``repro-synth --no-kernels``) flips a
process-wide switch that gated call sites consult via
:func:`kernels_enabled`.  The switch never changes results, only which
implementation computes them.
"""

from __future__ import annotations

import numpy as np

from repro.expr.cover import Cover
from repro.expr.cube import Cube

__all__ = [
    "CoverMatrix",
    "kernels_enabled",
    "popcount_words",
    "set_kernels_enabled",
]

_WORD_BITS = 64
_WORD_MASK = (1 << _WORD_BITS) - 1

#: Process-wide kernel switch (see module docstring).  Default on.
_ENABLED = True


def set_kernels_enabled(enabled: bool) -> bool:
    """Flip the ambient kernel switch; returns the previous value."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


def kernels_enabled() -> bool:
    """Whether gated call sites should take the vectorized path."""
    return _ENABLED


def _num_words(n: int) -> int:
    return max(1, (n + _WORD_BITS - 1) // _WORD_BITS)


def _masks_to_words(masks: list[int], words: int) -> np.ndarray:
    """Pack python-int literal masks into a ``(k, words)`` uint64 array."""
    out = np.zeros((len(masks), words), dtype=np.uint64)
    for row, mask in enumerate(masks):
        for word in range(words):
            chunk = (mask >> (word * _WORD_BITS)) & _WORD_MASK
            if chunk:
                out[row, word] = chunk
        # Wider masks than the universe are a caller bug; Cube validated.
    return out


def _words_to_mask(row: np.ndarray) -> int:
    mask = 0
    for word in range(row.shape[0] - 1, -1, -1):
        mask = (mask << _WORD_BITS) | int(row[word])
    return mask


if hasattr(np, "bitwise_count"):  # numpy >= 2.0

    def popcount_words(words: np.ndarray) -> np.ndarray:
        """Per-element popcount of a uint64 array (any shape)."""
        return np.bitwise_count(words).astype(np.int64)

else:  # pragma: no cover - exercised only on numpy < 2.0

    def popcount_words(words: np.ndarray) -> np.ndarray:
        """Per-element popcount via byte-table lookup (numpy < 2.0)."""
        table = np.array([bin(i).count("1") for i in range(256)],
                         dtype=np.uint8)
        as_bytes = words.astype(np.uint64).view(np.uint8)
        return table[as_bytes].reshape(*words.shape, 8).sum(
            axis=-1, dtype=np.int64
        )


class CoverMatrix:
    """A cover as two ``(k, words)`` uint64 literal-mask matrices.

    ``pos[i]``/``neg[i]`` are the packed positive/negative literal masks
    of cube ``i``; row order is the cover's cube order, which the batched
    primitives preserve so their answers map 1:1 onto the scalar loops
    they replace.
    """

    __slots__ = ("n", "words", "pos", "neg")

    def __init__(self, n: int, pos: np.ndarray, neg: np.ndarray):
        self.n = n
        self.words = pos.shape[1] if pos.ndim == 2 else _num_words(n)
        self.pos = pos
        self.neg = neg

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_cubes(cls, n: int, cubes: list[Cube] | tuple[Cube, ...]) -> "CoverMatrix":
        words = _num_words(n)
        pos = _masks_to_words([c.pos for c in cubes], words)
        neg = _masks_to_words([c.neg for c in cubes], words)
        return cls(n, pos, neg)

    @classmethod
    def from_cover(cls, cover: Cover) -> "CoverMatrix":
        return cls.from_cubes(cover.n, cover.cubes)

    # -- basic queries -----------------------------------------------------

    @property
    def num_cubes(self) -> int:
        return self.pos.shape[0]

    def __len__(self) -> int:
        return self.pos.shape[0]

    def cube(self, index: int) -> Cube:
        return Cube(
            self.n,
            _words_to_mask(self.pos[index]),
            _words_to_mask(self.neg[index]),
        )

    def to_cubes(self) -> tuple[Cube, ...]:
        return tuple(self.cube(i) for i in range(len(self)))

    def to_cover(self) -> Cover:
        return Cover(self.n, self.to_cubes())

    def literal_counts(self) -> np.ndarray:
        """Per-cube literal count — matches :attr:`Cube.num_literals`."""
        return popcount_words(self.pos | self.neg).sum(axis=1)

    # -- pairwise relations ------------------------------------------------

    def containment_matrix(self) -> np.ndarray:
        """Boolean ``C[i, j]`` = cube ``i`` covers cube ``j``.

        The broadcast form of :meth:`Cube.covers`: ``i`` covers ``j``
        iff ``pos_i ⊆ pos_j`` and ``neg_i ⊆ neg_j`` (fewer literals =
        bigger cube).  Diagonal is True (every cube covers itself).
        """
        pos_i = self.pos[:, None, :]
        pos_j = self.pos[None, :, :]
        neg_i = self.neg[:, None, :]
        neg_j = self.neg[None, :, :]
        return (
            ((pos_i & pos_j) == pos_i).all(axis=2)
            & ((neg_i & neg_j) == neg_i).all(axis=2)
        )

    def distance_matrix(self) -> np.ndarray:
        """``D[i, j]`` = number of conflicting variables (:meth:`Cube.distance`)."""
        conflict = (self.pos[:, None, :] & self.neg[None, :, :]) | (
            self.neg[:, None, :] & self.pos[None, :, :]
        )
        return popcount_words(conflict).sum(axis=2)

    def esop_distance_matrix(self) -> np.ndarray:
        """``D[i, j]`` = variables whose 3-valued state differs.

        The exorcism metric: ``popcount((pos_i ^ pos_j) | (neg_i ^
        neg_j))`` — the length of ``_difference_vars`` in
        :mod:`repro.esopmin.exorcism`.
        """
        diff = (self.pos[:, None, :] ^ self.pos[None, :, :]) | (
            self.neg[:, None, :] ^ self.neg[None, :, :]
        )
        return popcount_words(diff).sum(axis=2)

    def esop_distance_to(self, pos_mask: int, neg_mask: int) -> np.ndarray:
        """ESOP difference count of every row against one cube."""
        words = self.words
        pos = _masks_to_words([pos_mask], words)[0]
        neg = _masks_to_words([neg_mask], words)[0]
        diff = (self.pos ^ pos) | (self.neg ^ neg)
        return popcount_words(diff).sum(axis=1)

    def intersects_cube(self, cube: Cube) -> np.ndarray:
        """Boolean per-row :meth:`Cube.intersects` against one cube."""
        words = self.words
        pos = _masks_to_words([cube.pos], words)[0]
        neg = _masks_to_words([cube.neg], words)[0]
        conflict = (self.pos & neg) | (self.neg & pos)
        return ~(conflict.any(axis=1))

    def cofactor_cube(self, cube: Cube) -> "CoverMatrix":
        """Batched :meth:`Cube.cofactor_cube`: rows that intersect,
        with the cube's literals dropped (row order preserved)."""
        keep = self.intersects_cube(cube)
        words = self.words
        pos = _masks_to_words([cube.pos], words)[0]
        neg = _masks_to_words([cube.neg], words)[0]
        return CoverMatrix(
            self.n, self.pos[keep] & ~pos, self.neg[keep] & ~neg
        )

    def intersection_with(self, other: "CoverMatrix") -> np.ndarray:
        """Boolean ``M[i, j]`` = row ``i`` of self intersects row ``j``
        of ``other`` (share at least one minterm)."""
        conflict = (self.pos[:, None, :] & other.neg[None, :, :]) | (
            self.neg[:, None, :] & other.pos[None, :, :]
        )
        return ~(conflict.any(axis=2))

    # -- batched cover algebra ---------------------------------------------

    def scc_keep_order(self) -> list[int]:
        """Indices surviving single-cube containment, in the scalar order.

        Replays :meth:`Cover.single_cube_containment` exactly: visit
        cubes by ascending literal count (stable), keep a cube unless an
        already-kept cube covers it.  Returns *original* indices in the
        kept (sorted) order, so ``[cubes[i] for i in keep]`` equals the
        scalar result's cube tuple.
        """
        k = len(self)
        if k == 0:
            return []
        covers = self.containment_matrix()
        np.fill_diagonal(covers, False)
        order = np.argsort(self.literal_counts(), kind="stable")
        dropped = np.zeros(k, dtype=bool)
        keep: list[int] = []
        for j in order:
            if dropped[j]:
                continue
            keep.append(int(j))
            # Everything this cube covers can never be kept later.
            dropped |= covers[j]
        return keep

    def exorlink_pairs(self, distance: int = 2) -> list[tuple[int, int]]:
        """Upper-triangle ``(i, j)`` pairs at the given ESOP difference,
        in lexicographic scan order — the exorcism candidate set."""
        dist = self.esop_distance_matrix()
        upper = np.triu_indices(len(self), k=1)
        hits = dist[upper] == distance
        return list(zip(upper[0][hits].tolist(), upper[1][hits].tolist()))


def scc_cover(cover: Cover) -> Cover:
    """Vectorized :meth:`Cover.single_cube_containment` (bit-identical)."""
    matrix = CoverMatrix.from_cover(cover)
    keep = matrix.scc_keep_order()
    return Cover(cover.n, tuple(cover.cubes[i] for i in keep))
