"""Reading and writing Berkeley PLA format.

The IWLS'91 two-level benchmark set ships as ``.pla`` files; our regenerated
circuit suite can round-trip through the same format so users can export
the specifications or import their own.
Only the common subset is supported: ``.i``, ``.o``, ``.p``, ``.ilb``,
``.ob``, ``.type fd`` (default) and product lines; ``.e`` ends the file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ParseError, TooManyVariablesError
from repro.expr.cover import Cover
from repro.expr.cube import Cube

if TYPE_CHECKING:
    from repro.spec import CircuitSpec


@dataclass
class Pla:
    """A parsed PLA: one input universe, one output cover per output."""

    num_inputs: int
    num_outputs: int
    covers: list[Cover]
    input_names: list[str] = field(default_factory=list)
    output_names: list[str] = field(default_factory=list)


def parse_pla(text: str) -> Pla:
    """Parse PLA text into per-output SOP covers (``1`` and ``4`` only)."""
    num_inputs = num_outputs = None
    input_names: list[str] = []
    output_names: list[str] = []
    rows: list[tuple[str, str]] = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            parts = line.split()
            key = parts[0]
            if key == ".i":
                num_inputs = int(parts[1])
            elif key == ".o":
                num_outputs = int(parts[1])
            elif key == ".ilb":
                input_names = parts[1:]
            elif key == ".ob":
                output_names = parts[1:]
            elif key in (".p", ".type", ".e", ".end"):
                continue
            else:
                raise ParseError(f"unsupported PLA directive {key!r}")
            continue
        parts = line.split()
        if len(parts) == 1 and num_inputs is not None:
            parts = [line[:num_inputs], line[num_inputs:]]
        if len(parts) != 2:
            raise ParseError(f"bad PLA product line {line!r}")
        rows.append((parts[0], parts[1]))
    if num_inputs is None or num_outputs is None:
        raise ParseError("PLA missing .i or .o")
    per_output: list[list[Cube]] = [[] for _ in range(num_outputs)]
    for in_part, out_part in rows:
        if len(in_part) != num_inputs or len(out_part) != num_outputs:
            raise ParseError(f"PLA line width mismatch: {in_part} {out_part}")
        cube = Cube.from_string(in_part)
        for j, ch in enumerate(out_part):
            if ch in "14":
                per_output[j].append(cube)
            elif ch not in "0-2~":
                raise ParseError(f"bad PLA output character {ch!r}")
    covers = [Cover(num_inputs, tuple(cubes)) for cubes in per_output]
    return Pla(num_inputs, num_outputs, covers, input_names, output_names)


_SPEC_TO_PLA_MAX_WIDTH = 12


def pla_from_spec(spec: "CircuitSpec") -> Pla:
    """Flatten a specification into per-output covers over the global inputs.

    Cover-backed outputs lift their cubes from local to global variable
    indices; table- and expression-backed outputs are enumerated as
    minterm cubes over their local support (refused beyond
    ``_SPEC_TO_PLA_MAX_WIDTH`` inputs — this is the fuzzing/export path,
    not a general-purpose collapse).  The resulting PLA computes exactly
    the same multi-output function as ``spec``.
    """
    covers: list[Cover] = []
    for output in spec.outputs:
        if output.cover is not None:
            local = output.cover
        else:
            if output.width > _SPEC_TO_PLA_MAX_WIDTH:
                raise TooManyVariablesError(
                    f"{spec.name}/{output.name}: {output.width}-input "
                    f"output is too wide to enumerate as PLA cubes"
                )
            table = output.local_table()
            local = Cover(
                output.width,
                tuple(
                    Cube.from_minterm(output.width, m) for m in table.minterms()
                ),
            )
        lifted = []
        for cube in local:
            pos = neg = 0
            for j, var in enumerate(output.support):
                bit = 1 << j
                if cube.pos & bit:
                    pos |= 1 << var
                elif cube.neg & bit:
                    neg |= 1 << var
            lifted.append(Cube(spec.num_inputs, pos, neg))
        covers.append(Cover(spec.num_inputs, tuple(lifted)))
    return Pla(
        spec.num_inputs,
        spec.num_outputs,
        covers,
        list(spec.input_names),
        list(spec.output_names),
    )


def write_pla(pla: Pla) -> str:
    """Serialize per-output covers back into PLA text.

    Cubes equal across outputs are not merged; each (cube, output) pair
    produces one product line, which every PLA consumer accepts.
    """
    lines = [f".i {pla.num_inputs}", f".o {pla.num_outputs}"]
    if pla.input_names:
        lines.append(".ilb " + " ".join(pla.input_names))
    if pla.output_names:
        lines.append(".ob " + " ".join(pla.output_names))
    total = sum(len(cover) for cover in pla.covers)
    lines.append(f".p {total}")
    for j, cover in enumerate(pla.covers):
        out_part = "".join("1" if k == j else "0" for k in range(pla.num_outputs))
        for cube in cover:
            lines.append(f"{cube.to_string()} {out_part}")
    lines.append(".e")
    return "\n".join(lines) + "\n"
