"""Ordered Kronecker functional decision diagrams (OKFDDs).

The paper's related work (Becker & Drechsler [1], Sarabi et al. [16])
synthesizes from *Kronecker* diagrams, which choose per variable among
Shannon, positive-Davio and negative-Davio expansion — BDDs and OFDDs are
the two pure corners of that space.  This package implements the mixed
diagrams with apply operators, a greedy decomposition-type optimizer, and
network generation, so the FPRM flow's OFDD choice can be compared
against the whole Kronecker family.
"""

from repro.kfdd.manager import (
    NEG_DAVIO,
    POS_DAVIO,
    SHANNON,
    KfddManager,
    factor_kfdd,
    optimize_decomposition_types,
)

__all__ = [
    "KfddManager",
    "NEG_DAVIO",
    "POS_DAVIO",
    "SHANNON",
    "factor_kfdd",
    "optimize_decomposition_types",
]
