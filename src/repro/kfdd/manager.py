"""The OKFDD manager: per-variable Shannon / positive- / negative-Davio.

Node semantics (``low``/``high`` over later variables):

* Shannon:        ``f = x̄·low ⊕ x·high``   (reduce when low == high)
* positive Davio: ``f = low ⊕ x·high``     (reduce when high == 0)
* negative Davio: ``f = low ⊕ x̄·high``     (reduce when high == 0)

XOR is component-wise under every decomposition (both expansions are
GF(2)-linear); AND is component-wise under Shannon (the cross terms carry
``x·x̄ = 0``) and the usual Davio product rule otherwise.  A diagram is
canonical for a fixed decomposition-type list (DTL), which is the whole
point: sweeping the DTL explores BDDs, OFDDs and everything between.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ReproError
from repro.expr import expression as ex

SHANNON = 0
POS_DAVIO = 1
NEG_DAVIO = 2

FALSE = 0
TRUE = 1
_TERMINAL_LEVEL = 1 << 30


class KfddManager:
    """OKFDD manager over ``num_vars`` variables with a fixed DTL."""

    def __init__(self, num_vars: int, dtl: Sequence[int] | None = None,
                 node_limit: int = 1_000_000):
        self.num_vars = num_vars
        self.dtl = list(dtl) if dtl is not None else [POS_DAVIO] * num_vars
        if len(self.dtl) != num_vars:
            raise ValueError("decomposition-type list length mismatch")
        if any(t not in (SHANNON, POS_DAVIO, NEG_DAVIO) for t in self.dtl):
            raise ValueError("bad decomposition type")
        self.node_limit = node_limit
        self._level = [_TERMINAL_LEVEL, _TERMINAL_LEVEL]
        self._low = [0, 1]
        self._high = [0, 0]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._xor_memo: dict[tuple[int, int], int] = {}
        self._and_memo: dict[tuple[int, int], int] = {}

    # -- plumbing -----------------------------------------------------------

    def _mk(self, level: int, low: int, high: int) -> int:
        if self.dtl[level] == SHANNON:
            if low == high:
                return low
        else:
            if high == FALSE:
                return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is not None:
            return node
        node = len(self._level)
        if node > self.node_limit:
            raise ReproError(f"KFDD node limit exceeded ({self.node_limit})")
        self._level.append(level)
        self._low.append(low)
        self._high.append(high)
        self._unique[key] = node
        return node

    def level(self, node: int) -> int:
        return self._level[node]

    def low(self, node: int) -> int:
        return self._low[node]

    def high(self, node: int) -> int:
        return self._high[node]

    def _cofactors(self, node: int, level: int) -> tuple[int, int]:
        """(low, high) of ``node`` viewed at ``level``."""
        if self._level[node] == level:
            return self._low[node], self._high[node]
        # Variable absent: Shannon -> both cofactors equal the node;
        # Davio -> difference part is 0.
        if self.dtl[level] == SHANNON:
            return node, node
        return node, FALSE

    # -- operators ------------------------------------------------------------

    def xor_(self, f: int, g: int) -> int:
        if f == g:
            return FALSE
        if f == FALSE:
            return g
        if g == FALSE:
            return f
        if f > g:
            f, g = g, f
        key = (f, g)
        cached = self._xor_memo.get(key)
        if cached is not None:
            return cached
        level = min(self._level[f], self._level[g])
        if level == _TERMINAL_LEVEL:  # both terminals, f != g handled above
            return TRUE
        f0, f1 = self._cofactors(f, level)
        g0, g1 = self._cofactors(g, level)
        result = self._mk(level, self.xor_(f0, g0), self.xor_(f1, g1))
        self._xor_memo[key] = result
        return result

    def and_(self, f: int, g: int) -> int:
        if f == FALSE or g == FALSE:
            return FALSE
        if f == TRUE:
            return g
        if g == TRUE:
            return f
        if f == g:
            return f
        if f > g:
            f, g = g, f
        key = (f, g)
        cached = self._and_memo.get(key)
        if cached is not None:
            return cached
        level = min(self._level[f], self._level[g])
        f0, f1 = self._cofactors(f, level)
        g0, g1 = self._cofactors(g, level)
        if self.dtl[level] == SHANNON:
            result = self._mk(level, self.and_(f0, g0), self.and_(f1, g1))
        else:
            low = self.and_(f0, g0)
            high = self.xor_(
                self.xor_(self.and_(f0, g1), self.and_(f1, g0)),
                self.and_(f1, g1),
            )
            result = self._mk(level, low, high)
        self._and_memo[key] = result
        return result

    def not_(self, f: int) -> int:
        return self.xor_(f, TRUE)

    def or_(self, f: int, g: int) -> int:
        return self.xor_(self.xor_(f, g), self.and_(f, g))

    # -- builders ------------------------------------------------------------

    def pi_literal(self, var: int, negated: bool = False) -> int:
        kind = self.dtl[var]
        if kind == SHANNON:
            node = self._mk(var, FALSE, TRUE)  # x
            return self.not_(node) if negated else node
        if kind == POS_DAVIO:
            node = self._mk(var, FALSE, TRUE)  # x
            return self.not_(node) if negated else node
        node = self._mk(var, FALSE, TRUE)  # x̄ under negative Davio
        return node if negated else self.not_(node)

    def from_expr(self, expr: ex.Expr) -> int:
        if isinstance(expr, ex.Const):
            return TRUE if expr.value else FALSE
        if isinstance(expr, ex.Lit):
            return self.pi_literal(expr.var, expr.negated)
        if isinstance(expr, ex.Not):
            return self.not_(self.from_expr(expr.arg))
        children = [self.from_expr(child) for child in expr.children()]
        result = children[0]
        for child in children[1:]:
            if isinstance(expr, ex.And):
                result = self.and_(result, child)
            elif isinstance(expr, ex.Or):
                result = self.or_(result, child)
            else:
                result = self.xor_(result, child)
        return result

    # -- queries ---------------------------------------------------------------

    def evaluate(self, node: int, minterm: int) -> int:
        if node <= 1:
            return node
        var = self._level[node]
        bit = (minterm >> var) & 1
        kind = self.dtl[var]
        if kind == SHANNON:
            branch = self._high[node] if bit else self._low[node]
            return self.evaluate(branch, minterm)
        literal = bit if kind == POS_DAVIO else 1 - bit
        value = self.evaluate(self._low[node], minterm)
        if literal:
            value ^= self.evaluate(self._high[node], minterm)
        return value

    def node_count(self, node: int) -> int:
        seen: set[int] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current <= 1 or current in seen:
                continue
            seen.add(current)
            stack.append(self._low[current])
            stack.append(self._high[current])
        return len(seen)


def optimize_decomposition_types(
    expr: ex.Expr, num_vars: int, start: Sequence[int] | None = None
) -> tuple[list[int], int]:
    """Greedy per-variable DTL search minimizing diagram node count.

    Rebuild-based hill climbing (small functions only): for each variable
    try the three decomposition types and keep the best, repeating until
    no single change helps.  With no explicit ``start``, the climb begins
    from whichever pure corner (all-Shannon = BDD, all-positive-Davio =
    OFDD) is smaller, so the result never loses to either specialist.
    Returns (DTL, node count).
    """

    def size(candidate: list[int]) -> int:
        manager = KfddManager(num_vars, candidate)
        return manager.node_count(manager.from_expr(expr))

    if start is not None:
        dtl = list(start)
    else:
        corners = [[POS_DAVIO] * num_vars, [SHANNON] * num_vars]
        dtl = min(corners, key=size)
    best = size(dtl)
    improved = True
    while improved:
        improved = False
        for var in range(num_vars):
            for kind in (SHANNON, POS_DAVIO, NEG_DAVIO):
                if kind == dtl[var]:
                    continue
                candidate = list(dtl)
                candidate[var] = kind
                candidate_size = size(candidate)
                if candidate_size < best:
                    best = candidate_size
                    dtl = candidate
                    improved = True
    return dtl, best


def factor_kfdd(manager: KfddManager, node: int) -> ex.Expr:
    """Translate a KFDD into an expression (MUX for Shannon nodes,
    AND/XOR for Davio nodes), sharing subdiagrams by object identity."""
    memo: dict[int, ex.Expr] = {FALSE: ex.FALSE, TRUE: ex.TRUE}

    def walk(current: int) -> ex.Expr:
        cached = memo.get(current)
        if cached is not None:
            return cached
        var = manager.level(current)
        low = walk(manager.low(current))
        high = walk(manager.high(current))
        kind = manager.dtl[var]
        x = ex.Lit(var)
        if kind == SHANNON:
            result = ex.or_([
                ex.and_([ex.not_(x), low]),
                ex.and_([x, high]),
            ])
        elif kind == POS_DAVIO:
            result = ex.xor2(low, ex.and_([x, high]))
        else:
            result = ex.xor2(low, ex.and_([ex.not_(x), high]))
        memo[current] = result
        return result

    return walk(node)
