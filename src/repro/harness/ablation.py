"""Ablation studies over the design choices DESIGN.md calls out.

Each function runs the FPRM flow with one knob varied on a set of
circuits and returns per-circuit gate counts, so the benchmarks can print
the deltas directly.

Every run goes through the per-output result cache: ablation sweeps
share many (circuit, options) combinations — e.g. the default options
appear as the ``auto``/``with_rr``/``bdd`` variants of three different
sweeps — and cached outputs are skipped instead of re-synthesized.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits import get
from repro.core.options import (
    ControllabilityEngine,
    FactorMethod,
    SynthesisOptions,
)
from repro.core.synthesis import synthesize_fprm
from repro.fprm.polarity import PolarityStrategy

DEFAULT_CIRCUITS = ["z4ml", "rd53", "rd73", "t481", "majority", "cm82a"]


@dataclass
class AblationRow:
    circuit: str
    variants: dict[str, int]  # variant name -> 2-input gate count

    def best(self) -> str:
        return min(self.variants, key=self.variants.get)


def _run(name: str, options: SynthesisOptions) -> int:
    return synthesize_fprm(get(name), options.replace(cache=True)).two_input_gates


def ablate_redundancy_removal(circuits: list[str] | None = None) -> list[AblationRow]:
    """Factorization alone vs factorization + XOR redundancy removal."""
    rows = []
    for name in circuits or DEFAULT_CIRCUITS:
        rows.append(AblationRow(name, {
            "with_rr": _run(name, SynthesisOptions()),
            "without_rr": _run(name, SynthesisOptions(redundancy_removal=False)),
        }))
    return rows


def ablate_factor_method(circuits: list[str] | None = None) -> list[AblationRow]:
    """Paper's method 1 (cubes) vs method 2 (OFDD) vs auto."""
    rows = []
    for name in circuits or DEFAULT_CIRCUITS:
        rows.append(AblationRow(name, {
            "cube": _run(name, SynthesisOptions(factor_method=FactorMethod.CUBE)),
            "ofdd": _run(name, SynthesisOptions(factor_method=FactorMethod.OFDD)),
            "auto": _run(name, SynthesisOptions(factor_method=FactorMethod.AUTO)),
        }))
    return rows


def ablate_polarity(circuits: list[str] | None = None) -> list[AblationRow]:
    """All-positive vs greedy vs exhaustive polarity search."""
    rows = []
    for name in circuits or DEFAULT_CIRCUITS:
        rows.append(AblationRow(name, {
            "positive": _run(name, SynthesisOptions(
                polarity_strategy=PolarityStrategy.POSITIVE)),
            "greedy": _run(name, SynthesisOptions(
                polarity_strategy=PolarityStrategy.GREEDY)),
            "auto": _run(name, SynthesisOptions(
                polarity_strategy=PolarityStrategy.AUTO)),
        }))
    return rows


def ablate_controllability(circuits: list[str] | None = None) -> list[AblationRow]:
    """Exact BDD decision vs cube-union enumeration vs simulation only."""
    rows = []
    for name in circuits or DEFAULT_CIRCUITS:
        rows.append(AblationRow(name, {
            "bdd": _run(name, SynthesisOptions(
                controllability=ControllabilityEngine.BDD)),
            "enumeration": _run(name, SynthesisOptions(
                controllability=ControllabilityEngine.ENUMERATION)),
            "simulation": _run(name, SynthesisOptions(
                controllability=ControllabilityEngine.SIMULATION_ONLY)),
        }))
    return rows
