"""Ablation studies over the design choices DESIGN.md calls out.

Each function runs the FPRM flow with one knob varied on a set of
circuits and returns per-circuit gate counts, so the benchmarks can print
the deltas directly.

Every run goes through the per-output result cache: ablation sweeps
share many (circuit, options) combinations — e.g. the default options
appear as the ``auto``/``with_rr``/``bdd`` variants of three different
sweeps — and cached outputs are skipped instead of re-synthesized.

All sweeps accept ``checkpoint``/``resume`` like the table2 driver:
each finished (sweep, circuit) unit is written atomically to the
checkpoint directory, and a resumed sweep loads completed units instead
of re-running them (a unit is only reused when its stored variant set
matches the sweep's — changing the ablation invalidates old entries).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits import get
from repro.core.options import (
    ControllabilityEngine,
    FactorMethod,
    SynthesisOptions,
)
from repro.engine import SynthesisEngine
from repro.fprm.polarity import PolarityStrategy
from repro.resilience.checkpoint import CheckpointStore

DEFAULT_CIRCUITS = ["z4ml", "rd53", "rd73", "t481", "majority", "cm82a"]


@dataclass
class AblationRow:
    circuit: str
    variants: dict[str, int]  # variant name -> 2-input gate count

    def best(self) -> str:
        return min(self.variants, key=self.variants.get)


def _run(engine: SynthesisEngine, name: str,
         options: SynthesisOptions) -> int:
    result = engine.synthesize(get(name), options, cache=True)
    return result.two_input_gates


def _sweep(
    sweep: str,
    variant_options: dict[str, SynthesisOptions],
    circuits: list[str] | None,
    checkpoint: str | None = None,
    resume: bool = False,
    engine: SynthesisEngine | None = None,
) -> list[AblationRow]:
    """Run one ablation sweep, checkpointing per circuit when asked.

    Every variant run routes through one shared
    :class:`~repro.engine.SynthesisEngine` (the caller's, else a
    process-local one) with caching forced on — ablation sweeps repeat
    many (circuit, options) combinations.
    """
    store = CheckpointStore(checkpoint) if checkpoint is not None else None
    owned_engine: SynthesisEngine | None = None
    if engine is None:
        engine = owned_engine = SynthesisEngine()
    reused: list[str] = []
    computed: list[str] = []
    rows: list[AblationRow] = []
    try:
        for name in circuits or DEFAULT_CIRCUITS:
            unit = f"{sweep}-{name}"
            if store is not None and resume:
                payload = store.load(unit)
                saved = payload.get("variants") if payload is not None else None
                if isinstance(saved, dict) and set(saved) == set(variant_options):
                    rows.append(AblationRow(
                        name, {variant: int(gates)
                               for variant, gates in saved.items()}
                    ))
                    reused.append(unit)
                    continue
            row = AblationRow(name, {
                variant: _run(engine, name, options)
                for variant, options in variant_options.items()
            })
            rows.append(row)
            computed.append(unit)
            if store is not None:
                store.save(unit, {"circuit": name, "variants": row.variants})
    finally:
        if owned_engine is not None:
            owned_engine.close()
    if store is not None:
        store.record_run(resumed=resume, reused=reused, computed=computed,
                         extra={"sweep": sweep})
    return rows


def ablate_redundancy_removal(
    circuits: list[str] | None = None,
    checkpoint: str | None = None,
    resume: bool = False,
    engine: SynthesisEngine | None = None,
) -> list[AblationRow]:
    """Factorization alone vs factorization + XOR redundancy removal."""
    return _sweep("redundancy-removal", {
        "with_rr": SynthesisOptions(),
        "without_rr": SynthesisOptions(redundancy_removal=False),
    }, circuits, checkpoint, resume, engine)


def ablate_factor_method(
    circuits: list[str] | None = None,
    checkpoint: str | None = None,
    resume: bool = False,
    engine: SynthesisEngine | None = None,
) -> list[AblationRow]:
    """Paper's method 1 (cubes) vs method 2 (OFDD) vs auto."""
    return _sweep("factor-method", {
        "cube": SynthesisOptions(factor_method=FactorMethod.CUBE),
        "ofdd": SynthesisOptions(factor_method=FactorMethod.OFDD),
        "auto": SynthesisOptions(factor_method=FactorMethod.AUTO),
    }, circuits, checkpoint, resume, engine)


def ablate_polarity(
    circuits: list[str] | None = None,
    checkpoint: str | None = None,
    resume: bool = False,
    engine: SynthesisEngine | None = None,
) -> list[AblationRow]:
    """All-positive vs greedy vs exhaustive polarity search."""
    return _sweep("polarity", {
        "positive": SynthesisOptions(
            polarity_strategy=PolarityStrategy.POSITIVE),
        "greedy": SynthesisOptions(
            polarity_strategy=PolarityStrategy.GREEDY),
        "auto": SynthesisOptions(
            polarity_strategy=PolarityStrategy.AUTO),
    }, circuits, checkpoint, resume, engine)


def ablate_controllability(
    circuits: list[str] | None = None,
    checkpoint: str | None = None,
    resume: bool = False,
    engine: SynthesisEngine | None = None,
) -> list[AblationRow]:
    """Exact BDD decision vs cube-union enumeration vs simulation only."""
    return _sweep("controllability", {
        "bdd": SynthesisOptions(
            controllability=ControllabilityEngine.BDD),
        "enumeration": SynthesisOptions(
            controllability=ControllabilityEngine.ENUMERATION),
        "simulation": SynthesisOptions(
            controllability=ControllabilityEngine.SIMULATION_ONLY),
    }, circuits, checkpoint, resume, engine)
