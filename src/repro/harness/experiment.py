"""Running one benchmark circuit through both flows.

For a circuit this runs (a) the FPRM flow of the paper and (b) the
SIS-like baseline (best of the script stand-ins), technology-maps both
onto ``mcnc_lite`` and estimates power for both, yielding every quantity a
Table 2 row needs.

Both flows route through the shared :class:`~repro.engine.SynthesisEngine`;
callers running sweeps (table2, ablation) pass one engine in so the
whole sweep shares its cache wiring.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits import get
from repro.core.options import SynthesisOptions
from repro.engine import SynthesisEngine
from repro.mapping import map_network, mcnc_lite_library
from repro.power.mapped import estimate_mapped_power


@dataclass
class FlowMetrics:
    """One flow's numbers for one circuit."""

    premap_lits: int
    seconds: float
    mapped_gates: int
    mapped_lits: int
    power_uw: float

    def as_dict(self) -> dict:
        return {
            "premap_lits": self.premap_lits,
            "seconds": self.seconds,
            "mapped_gates": self.mapped_gates,
            "mapped_lits": self.mapped_lits,
            "power_uw": self.power_uw,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FlowMetrics":
        return cls(
            premap_lits=int(payload["premap_lits"]),
            seconds=float(payload["seconds"]),
            mapped_gates=int(payload["mapped_gates"]),
            mapped_lits=int(payload["mapped_lits"]),
            power_uw=float(payload["power_uw"]),
        )


@dataclass
class CircuitComparison:
    """Everything a Table 2 row reports."""

    name: str
    inputs: int
    outputs: int
    arithmetic: bool
    baseline: FlowMetrics
    ours: FlowMetrics
    baseline_script: str

    def as_dict(self) -> dict:
        """JSON form — what a table2 checkpoint stores per circuit."""
        return {
            "name": self.name,
            "inputs": self.inputs,
            "outputs": self.outputs,
            "arithmetic": self.arithmetic,
            "baseline": self.baseline.as_dict(),
            "ours": self.ours.as_dict(),
            "baseline_script": self.baseline_script,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CircuitComparison":
        return cls(
            name=payload["name"],
            inputs=int(payload["inputs"]),
            outputs=int(payload["outputs"]),
            arithmetic=bool(payload["arithmetic"]),
            baseline=FlowMetrics.from_dict(payload["baseline"]),
            ours=FlowMetrics.from_dict(payload["ours"]),
            baseline_script=payload.get("baseline_script", ""),
        )

    @property
    def improve_lits_pct(self) -> float:
        if self.baseline.mapped_lits == 0:
            return 0.0
        return 100.0 * (
            self.baseline.mapped_lits - self.ours.mapped_lits
        ) / self.baseline.mapped_lits

    @property
    def improve_power_pct(self) -> float:
        if self.baseline.power_uw == 0:
            return 0.0
        return 100.0 * (
            self.baseline.power_uw - self.ours.power_uw
        ) / self.baseline.power_uw

    @property
    def speedup(self) -> float:
        if self.ours.seconds == 0:
            return float("inf")
        return self.baseline.seconds / self.ours.seconds


def run_circuit(
    name: str,
    options: SynthesisOptions | None = None,
    verify: bool = True,
    jobs: int | None = None,
    cache: bool | None = None,
    engine: SynthesisEngine | None = None,
) -> CircuitComparison:
    """Run both flows on one benchmark circuit and collect metrics.

    ``jobs``/``cache`` override the corresponding flow options when
    given: ``jobs`` parallelizes the FPRM per-output pipelines and
    ``cache`` lets repeated sweeps over the same circuits (e.g. the
    Table 2 benchmarks) reuse per-output results within the process.
    ``engine`` lets a sweep share one engine (and thus one cache
    setup, possibly disk-backed) across circuits; without one a plain
    process-local engine is used.
    """
    spec = get(name)
    library = mcnc_lite_library()

    if engine is None:
        engine = SynthesisEngine()
    # Resolve against the engine's base options so engine-level cache
    # wiring (e.g. a disk tier implying cache=True) carries through.
    options = engine.resolve(
        options,
        verify=False if not verify else None,
        jobs=jobs,
        cache=cache,
    )
    ours = engine.synthesize(spec, options)
    ours_mapped = map_network(ours.network, library)
    ours_metrics = FlowMetrics(
        premap_lits=ours.literals,
        seconds=ours.seconds,
        mapped_gates=ours_mapped.gate_count,
        mapped_lits=ours_mapped.literal_count,
        power_uw=estimate_mapped_power(ours_mapped).microwatts,
    )

    base, script = engine.baseline(spec, verify=verify)
    base_mapped = map_network(base.network, library)
    base_metrics = FlowMetrics(
        premap_lits=base.literals,
        seconds=base.seconds,
        mapped_gates=base_mapped.gate_count,
        mapped_lits=base_mapped.literal_count,
        power_uw=estimate_mapped_power(base_mapped).microwatts,
    )

    return CircuitComparison(
        name=name,
        inputs=spec.num_inputs,
        outputs=spec.num_outputs,
        arithmetic=spec.is_arithmetic,
        baseline=base_metrics,
        ours=ours_metrics,
        baseline_script=script,
    )
