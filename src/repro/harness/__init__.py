"""Experiment harness: Table 2 reproduction, run-time study, ablations."""

from repro.harness.experiment import CircuitComparison, run_circuit
from repro.harness.table2 import Table2Row, run_table2, format_table2

__all__ = [
    "CircuitComparison",
    "Table2Row",
    "format_table2",
    "run_circuit",
    "run_table2",
]
