"""Export the benchmark suite and synthesized netlists to disk.

``python -m repro.harness.export --dir exported`` writes, per circuit:

* ``<name>.pla`` — the two-level specification (table/cover outputs only;
  wide structural outputs are skipped with a note);
* ``<name>.fprm.blif`` — the FPRM flow's synthesized network;
* ``<name>.sislite.blif`` — the baseline's network;

so results can be fed to external tools (ABC, SIS, commercial flows).
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.circuits import all_names, get
from repro.core.options import SynthesisOptions
from repro.core.synthesis import synthesize_fprm
from repro.errors import TooManyVariablesError
from repro.expr.pla import Pla, write_pla
from repro.network.blif import write_blif
from repro.sislite.isop import isop_cover
from repro.sislite.scripts import best_baseline

_PLA_WIDTH_LIMIT = 14


def export_circuit(name: str, directory: pathlib.Path,
                   verify: bool = False) -> list[str]:
    """Write one circuit's artifacts; returns the file names written."""
    spec = get(name)
    written: list[str] = []
    safe = name.replace("/", "_")

    covers = []
    exportable = True
    for output in spec.outputs:
        if output.width > _PLA_WIDTH_LIMIT:
            exportable = False
            break
        cover = output.cover
        if cover is None:
            try:
                cover = isop_cover(output.local_table())
            except TooManyVariablesError:
                exportable = False
                break
        covers.append(cover.lift_support(spec.num_inputs,
                                         list(output.support)))
    if exportable:
        pla = Pla(spec.num_inputs, spec.num_outputs, covers,
                  input_names=spec.input_names,
                  output_names=spec.output_names)
        path = directory / f"{safe}.pla"
        path.write_text(write_pla(pla), encoding="utf-8")
        written.append(path.name)

    ours = synthesize_fprm(spec, SynthesisOptions(verify=verify))
    path = directory / f"{safe}.fprm.blif"
    path.write_text(write_blif(ours.network, model=f"{name}_fprm"),
                    encoding="utf-8")
    written.append(path.name)

    base, _ = best_baseline(spec, verify=verify)
    path = directory / f"{safe}.sislite.blif"
    path.write_text(write_blif(base.network, model=f"{name}_sislite"),
                    encoding="utf-8")
    written.append(path.name)
    return written


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="Export suite artifacts")
    parser.add_argument("--dir", default="exported")
    parser.add_argument("--circuits", default=None,
                        help="comma-separated subset (default: all 41)")
    parser.add_argument("--verify", action="store_true")
    args = parser.parse_args(argv)
    directory = pathlib.Path(args.dir)
    directory.mkdir(parents=True, exist_ok=True)
    names = args.circuits.split(",") if args.circuits else all_names()
    for name in names:
        files = export_circuit(name, directory, verify=args.verify)
        print(f"{name}: {', '.join(files)}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
