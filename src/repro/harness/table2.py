"""Table 2 reproduction: the paper's whole evaluation in one driver.

``run_table2`` runs every benchmark circuit through both flows and
returns the rows; ``format_table2`` renders them in the paper's column
layout (pre-map literals + time for both flows, post-map gates +
literals, %lits and %power improvement) with the two summary rows
(*Total arith.* and *Total all*, sums for counts and averages for the
improvement columns — exactly the paper's convention).

Long sweeps can be checkpointed: with ``checkpoint=<dir>`` every
finished circuit is written atomically to the directory, and
``resume=True`` loads completed circuits instead of re-running them — a
sweep killed after circuit 17 of 25 restarts at 18.  Each invocation
appends its resume provenance (which circuits were reused vs computed)
to the store's ``manifest.json``.

Command line::

    python -m repro.harness.table2 [--quick] [--circuits a,b,c] [--out F]
                                   [--checkpoint DIR] [--resume]
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass

from repro.circuits import all_names
from repro.core.options import SynthesisOptions
from repro.engine import EngineConfig, SynthesisEngine, resolve_cache_dir
from repro.harness.experiment import CircuitComparison, run_circuit
from repro.resilience.checkpoint import CheckpointStore
from repro.utils.tabulate import format_table

# A fast subset exercising every circuit family, for smoke runs.
QUICK_CIRCUITS = [
    "z4ml", "adr4", "rd53", "majority", "t481", "xor10", "cm82a",
    "bcd-div3", "f2", "squar5",
]


@dataclass
class Table2Row:
    comparison: CircuitComparison

    def cells(self) -> list[object]:
        c = self.comparison
        name = c.name + ("*" if c.arithmetic else "")
        return [
            name,
            f"{c.inputs}/{c.outputs}",
            c.baseline.premap_lits,
            f"{c.baseline.seconds:.2f}",
            c.ours.premap_lits,
            f"{c.ours.seconds:.2f}",
            c.baseline.mapped_gates,
            c.baseline.mapped_lits,
            c.ours.mapped_gates,
            c.ours.mapped_lits,
            f"{c.improve_lits_pct:.0f}",
            f"{c.improve_power_pct:.0f}",
        ]


_HEADERS = [
    "Circuit", "I/O",
    "SISlite lits", "time", "Ours lits", "time",
    "SISlite gates", "lits", "Ours gates", "lits",
    "improve%lits", "improve%power",
]


def run_table2(
    circuits: list[str] | None = None,
    options: SynthesisOptions | None = None,
    verify: bool = True,
    progress=None,
    jobs: int | None = None,
    cache: bool | None = None,
    checkpoint: str | None = None,
    resume: bool = False,
    engine: SynthesisEngine | None = None,
    cache_dir: str | None = None,
) -> list[CircuitComparison]:
    """Run the comparison over ``circuits`` (default: the whole suite).

    With ``checkpoint`` set, every finished circuit is saved atomically
    to that directory; ``resume=True`` additionally loads circuits that
    already have a checkpoint instead of re-running them, and the
    store's manifest records which was which.

    The whole sweep runs through one shared
    :class:`~repro.engine.SynthesisEngine` — the caller's, or one built
    here (with the disk cache tier attached when ``cache_dir`` is
    given, so repeated sweeps are cross-process warm).
    """
    names = circuits if circuits is not None else all_names()
    store = CheckpointStore(checkpoint) if checkpoint is not None else None
    owned_engine: SynthesisEngine | None = None
    if engine is None:
        engine = owned_engine = SynthesisEngine(
            EngineConfig(cache_dir=cache_dir)
        )
    reused: list[str] = []
    computed: list[str] = []
    rows = []
    try:
        for name in names:
            if store is not None and resume:
                payload = store.load(name)
                if payload is not None:
                    rows.append(CircuitComparison.from_dict(payload))
                    reused.append(name)
                    if progress is not None:
                        progress(f"{name} (resumed)")
                    continue
            if progress is not None:
                progress(name)
            row = run_circuit(name, options=options, verify=verify,
                              jobs=jobs, cache=cache, engine=engine)
            rows.append(row)
            computed.append(name)
            if store is not None:
                store.save(name, row.as_dict())
    finally:
        if owned_engine is not None:
            owned_engine.close()
    if store is not None:
        store.record_run(resumed=resume, reused=reused, computed=computed,
                         extra={"sweep": "table2", "circuits": list(names)})
    return rows


def _summary_row(label: str, rows: list[CircuitComparison]) -> list[object]:
    if not rows:
        return [label, ""] + [""] * 10
    return [
        label,
        "",
        sum(r.baseline.premap_lits for r in rows),
        f"{sum(r.baseline.seconds for r in rows):.2f}",
        sum(r.ours.premap_lits for r in rows),
        f"{sum(r.ours.seconds for r in rows):.2f}",
        sum(r.baseline.mapped_gates for r in rows),
        sum(r.baseline.mapped_lits for r in rows),
        sum(r.ours.mapped_gates for r in rows),
        sum(r.ours.mapped_lits for r in rows),
        f"{sum(r.improve_lits_pct for r in rows) / len(rows):.1f}",
        f"{sum(r.improve_power_pct for r in rows) / len(rows):.1f}",
    ]


def format_table2(rows: list[CircuitComparison]) -> str:
    """Render rows + the two summary rows in the paper's layout."""
    body = [Table2Row(row).cells() for row in rows]
    arith = [row for row in rows if row.arithmetic]
    body.append(_summary_row("Total arith.", arith))
    body.append(_summary_row("Total all", rows))
    table = format_table(_HEADERS, body)
    legend = (
        "* = arithmetic circuit (counted in 'Total arith.'); "
        "improvement columns are averages in the summary rows, "
        "as in the paper."
    )
    return table + "\n\n" + legend


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="Reproduce Table 2")
    parser.add_argument("--quick", action="store_true",
                        help="run a 10-circuit subset")
    parser.add_argument("--circuits", type=str, default=None,
                        help="comma-separated circuit names")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip equivalence checking (faster)")
    parser.add_argument("--out", type=str, default=None,
                        help="also write the table to this file")
    parser.add_argument("--checkpoint", type=str, default=None,
                        help="checkpoint finished circuits to this directory")
    parser.add_argument("--resume", action="store_true",
                        help="reuse completed checkpoints (requires "
                             "--checkpoint)")
    parser.add_argument("--cache-dir", type=str, default=None,
                        help="disk-backed result cache shared across "
                             "processes (default: REPRO_CACHE_DIR)")
    args = parser.parse_args(argv)
    if args.resume and not args.checkpoint:
        parser.error("--resume requires --checkpoint")
    if args.circuits:
        names = args.circuits.split(",")
    elif args.quick:
        names = QUICK_CIRCUITS
    else:
        names = all_names()
    rows = run_table2(
        names,
        verify=not args.no_verify,
        progress=lambda name: print(f"running {name} ...", file=sys.stderr),
        checkpoint=args.checkpoint,
        resume=args.resume,
        cache_dir=resolve_cache_dir(args.cache_dir),
    )
    text = format_table2(rows)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
