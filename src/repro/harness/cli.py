"""repro-synth — synthesize a PLA or BLIF file from the command line.

    python -m repro.harness.cli INPUT [-o OUT.blif] [--flow fprm|sislite]
                                [--report] [--library GENLIB]
                                [--jobs N] [--trace FILE] [--profile FILE]
                                [--cache] [--cache-dir DIR]

Reads a two-level PLA or structural BLIF, runs the chosen flow (the
paper's FPRM flow by default) through the shared
:mod:`repro.engine` layer, verifies equivalence, optionally maps onto
a genlib library, and writes the result as BLIF.  ``--report`` prints the
gate/literal/depth/power summary instead of (or in addition to) writing.
``--jobs N`` synthesizes outputs across N worker processes (0 = all
cores), ``--trace FILE`` dumps the per-pass FlowTrace as JSON (``-``
writes it to stdout), ``--profile FILE`` attaches the sampling profiler
and writes a flamegraph (speedscope JSON, or collapsed stacks for a
``.collapsed``/``.folded`` extension), ``--cache`` reuses per-output results within
the process, and ``--cache-dir DIR`` (or ``REPRO_CACHE_DIR``) shares
them across processes through the disk cache tier.  Inspect, diff or
export a dumped trace with the ``repro-trace`` companion tool
(:mod:`repro.obs.cli`); inspect or maintain a disk cache with
``repro-cache``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.engine import (
    EngineConfig,
    SynthesisEngine,
    resolve_cache_dir,
    resolve_options,
)
from repro.mapping import map_network, mcnc_lite_library, parse_genlib
from repro.network.blif import parse_blif, write_blif
from repro.network.to_expr import spec_from_network, spec_from_pla_text
from repro.power import estimate_power
from repro.timing import network_delay


def load_spec(path: pathlib.Path):
    text = path.read_text(encoding="utf-8")
    if path.suffix.lower() == ".pla" or text.lstrip().startswith(".i"):
        return spec_from_pla_text(text, name=path.stem)
    return spec_from_network(parse_blif(text), name=path.stem)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-synth",
        description="FPRM multilevel synthesis (DAC'96 reproduction)",
    )
    parser.add_argument("input", help="PLA or BLIF file")
    parser.add_argument("-o", "--output", default=None,
                        help="write the synthesized network as BLIF")
    parser.add_argument("--flow", choices=["fprm", "sislite"],
                        default="fprm")
    parser.add_argument("--library", default=None,
                        help="genlib file for technology mapping "
                             "(default: built-in mcnc_lite)")
    parser.add_argument("--map", action="store_true",
                        help="report mapped gates/literals too")
    parser.add_argument("--no-verify", action="store_true")
    parser.add_argument("--report", action="store_true",
                        help="print a synthesis report to stdout")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="synthesize outputs across N worker processes "
                             "(0 = all cores; fprm flow only)")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="write the per-pass FlowTrace as JSON "
                             "('-' = stdout; fprm flow only)")
    parser.add_argument("--profile", default=None, metavar="FILE",
                        help="sample the run and write a flamegraph: "
                             ".collapsed/.folded = collapsed stacks, else "
                             "speedscope JSON (fprm flow only)")
    parser.add_argument("--profile-interval", type=float, default=None,
                        metavar="S",
                        help="sampling period in seconds (default 0.005)")
    parser.add_argument("--cache", action="store_true",
                        help="reuse per-output results across runs in this "
                             "process (fprm flow only)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="disk-backed result cache shared across "
                             "processes (implies --cache; default: the "
                             "REPRO_CACHE_DIR environment variable)")
    parser.add_argument("--budget-seconds", type=float, default=None,
                        metavar="S",
                        help="wall-clock budget for the run; on exhaustion "
                             "the flow degrades effort instead of failing "
                             "(fprm flow only)")
    parser.add_argument("--timeout-per-output", type=float, default=None,
                        metavar="S",
                        help="watchdog window for pool workers: kill and "
                             "retry an output with no progress for S "
                             "seconds (fprm flow only)")
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="pool retries per output after a worker "
                             "crash/hang before the in-process fallback "
                             "(default 2; fprm flow only)")
    parser.add_argument("--no-kernels", action="store_true",
                        help="run the scalar cube-algebra loops instead "
                             "of the vectorized kernels (bit-identical "
                             "results; escape hatch / A-B timing)")
    args = parser.parse_args(argv)

    spec = load_spec(pathlib.Path(args.input))
    verify = not args.no_verify
    # All the per-flag plumbing lives in the engine layer now: sparse
    # overrides fold into the defaults, a cache directory attaches the
    # shared disk tier, and the engine assembles the right pipeline.
    options = resolve_options(
        verify=verify,
        cache=args.cache or None,
        jobs=args.jobs,
        profile=True if args.profile else None,
        profile_interval=args.profile_interval,
        budget_seconds=args.budget_seconds,
        timeout_per_output=args.timeout_per_output,
        retries=args.retries,
        use_kernels=False if args.no_kernels else None,
    )
    config = EngineConfig(
        options=options,
        flow=args.flow,
        cache_dir=resolve_cache_dir(args.cache_dir),
    )
    with SynthesisEngine(config) as engine:
        run = engine.run(spec)
    network = run.network
    seconds = run.seconds
    trace = run.trace
    flow_note = run.flow

    if args.report or not args.output:
        print(f"flow:    {flow_note}")
        print(f"inputs:  {spec.num_inputs}   outputs: {spec.num_outputs}")
        print(f"gates:   {network.two_input_gate_count()} "
              f"(2-input AND/OR, XOR=3)")
        print(f"lits:    {network.literal_count()}")
        print(f"depth:   {network_delay(network).delay:.0f} levels")
        print(f"power:   {estimate_power(network).microwatts:.1f} uW")
        print(f"runtime: {seconds:.2f} s")
        if trace is not None:
            passes = len(trace.records)
            note = f"passes:  {passes} records, jobs={trace.jobs}"
            if trace.cache_enabled:
                note += (f", cache {trace.cache_hits} hit(s)/"
                         f"{trace.cache_misses} miss(es)")
            print(note)
            if config.cache_dir is not None:
                from repro.obs.metrics import get_metrics_registry

                registry = get_metrics_registry()
                print(f"disk-cache: "
                      f"{registry.counter('cache.disk.hits').value:g} "
                      f"hit(s), "
                      f"{registry.counter('cache.disk.puts').value:g} "
                      f"store(s) in {config.cache_dir}")
            if trace.degradations or trace.retries:
                print(f"resilience: {trace.retries} pool retr"
                      f"{'y' if trace.retries == 1 else 'ies'}; "
                      f"degraded: "
                      f"{', '.join(trace.degradations) or 'none'}")
            hot = trace.hotspots()
            if hot:
                print("hotspots (self-time):")
                for name, secs in hot:
                    print(f"  {name:<24} {secs:8.4f}s")
        if args.map:
            library = (
                parse_genlib(pathlib.Path(args.library).read_text(),
                             name=args.library)
                if args.library else mcnc_lite_library()
            )
            mapped = map_network(network, library)
            print(f"mapped:  {mapped.gate_count} cells, "
                  f"{mapped.literal_count} lits, area {mapped.area:.0f}")
    if args.profile:
        if trace is None or trace.profile is None:
            print("--profile: no profile collected for this flow; skipped",
                  file=sys.stderr)
        else:
            from repro.obs.prof import write_profile

            kind = write_profile(trace.profile, args.profile, name=spec.name)
            print(f"wrote {kind} flamegraph "
                  f"({trace.profile.sample_count} samples) to {args.profile}",
                  file=sys.stderr)
    if args.trace:
        if trace is None:
            print("--trace: no trace available for this flow; skipped",
                  file=sys.stderr)
        elif args.trace == "-":
            print(trace.to_json())
        else:
            pathlib.Path(args.trace).write_text(
                trace.to_json(), encoding="utf-8"
            )
            print(f"wrote {args.trace}", file=sys.stderr)
    if args.output:
        pathlib.Path(args.output).write_text(
            write_blif(network, model=spec.name), encoding="utf-8"
        )
        print(f"wrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
