"""Deterministic filesystem fault injection for the storage stack.

Every durable artifact in the system — the serve job journal, the
disk-backed result cache, the harness checkpoint store, the run-history
file — is written through a handful of primitives: ``open``, ``write``,
``fsync``, ``rename``.  This module wraps exactly those primitives so a
test (or the disk-fault gauntlet, :mod:`repro.serve.gauntlet` phase C)
can inject ``ENOSPC``/``EIO``/partial-write/fsync-failure faults
*deterministically* — by call count and path pattern, not by filling a
real disk — and assert that the storage layer degrades instead of
corrupting state or crashing the daemon.

With no plan installed every wrapper is a single global ``None`` check
in front of the real syscall, so production code pays nothing for the
injectability.

A plan is installed either in-process (:func:`install`) or — for
subprocess daemons the gauntlet boots — via the :data:`FAULTFS_ENV`
environment variable, parsed on first use.  The spec grammar is
semicolon-separated rules of colon-separated fields::

    op:kind[:path=SUBSTRING][:after=N][:count=M]

    write:enospc:path=entries:after=2     # ENOSPC on disk-cache entry
                                          # writes, skipping the first 2
    fsync:eio:path=journal                # every journal fsync fails
    write:partial:path=journal:count=1    # one torn journal append

``op`` is one of ``open``/``write``/``fsync``/``replace`` or ``*``;
``kind`` is ``enospc``, ``eio`` or ``partial`` (write a prefix of the
payload, then raise ``ENOSPC`` — the torn-write shape).  ``path``
matches substrings of the target path; ``after`` skips the first N
matching calls; ``count`` bounds how many faults the rule injects
(unset = every matching call), which is how a test models a disk that
*recovers* — the breaker's half-open re-probe then finds it healthy.

Injected faults are counted in the ``faultfs.injected`` metric so a
gauntlet can assert the faults actually fired.
"""

from __future__ import annotations

import errno
import os
import threading
from dataclasses import dataclass, field

__all__ = [
    "FAULTFS_ENV",
    "FaultPlan",
    "FaultRule",
    "active_plan",
    "atomic_write_text",
    "clear",
    "fs_close",
    "fs_fsync",
    "fs_open",
    "fs_replace",
    "fs_write",
    "install",
    "parse_plan",
]

FAULTFS_ENV = "REPRO_FAULTFS"

_ERRNO_BY_KIND = {
    "enospc": errno.ENOSPC,
    "eio": errno.EIO,
    "partial": errno.ENOSPC,  # the error after the torn prefix
}
_OPS = ("open", "write", "fsync", "replace", "*")


@dataclass
class FaultRule:
    """One injection rule: which op/path to hit, when, how often."""

    op: str
    kind: str
    path: str = ""
    #: Skip the first N matching calls before injecting.
    after: int = 0
    #: Inject at most N faults (``None`` = every matching call forever).
    count: int | None = None
    matched: int = 0
    injected: int = 0

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown faultfs op {self.op!r}")
        if self.kind not in _ERRNO_BY_KIND:
            raise ValueError(f"unknown faultfs kind {self.kind!r}")

    def take(self, op: str, path: str) -> bool:
        """Does this rule fire for one ``op`` on ``path``?  (Counts.)"""
        if self.op != "*" and op != self.op:
            return False
        if self.path and self.path not in path:
            return False
        self.matched += 1
        if self.matched <= self.after:
            return False
        if self.count is not None and self.injected >= self.count:
            return False
        self.injected += 1
        return True


@dataclass
class FaultPlan:
    """An ordered rule list; the first matching rule wins."""

    rules: list[FaultRule] = field(default_factory=list)
    injected_total: int = 0

    def check(self, op: str, path: str) -> FaultRule | None:
        for rule in self.rules:
            if rule.take(op, path):
                self.injected_total += 1
                return rule
        return None


def parse_plan(spec: str) -> FaultPlan:
    """Parse the :data:`FAULTFS_ENV` grammar into a :class:`FaultPlan`."""
    rules: list[FaultRule] = []
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        fields = chunk.split(":")
        if len(fields) < 2:
            raise ValueError(f"faultfs rule needs op:kind, got {chunk!r}")
        op, kind = fields[0], fields[1]
        kwargs: dict = {}
        for extra in fields[2:]:
            name, sep, value = extra.partition("=")
            if not sep:
                raise ValueError(f"faultfs field {extra!r} is not key=value")
            if name == "path":
                kwargs["path"] = value
            elif name == "after":
                kwargs["after"] = int(value)
            elif name == "count":
                kwargs["count"] = int(value)
            else:
                raise ValueError(f"unknown faultfs field {name!r}")
        rules.append(FaultRule(op=op, kind=kind, **kwargs))
    return FaultPlan(rules=rules)


# -- plan installation --------------------------------------------------------

_LOCK = threading.Lock()
_PLAN: FaultPlan | None = None
_ENV_CHECKED = False

#: fd -> path, so write/fsync faults can match by path pattern.
_FD_PATHS: dict[int, str] = {}


def install(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` process-wide (replacing any active plan)."""
    global _PLAN, _ENV_CHECKED
    with _LOCK:
        _PLAN = plan
        _ENV_CHECKED = True
    return plan


def clear() -> None:
    """Remove the active plan (wrappers become passthroughs again)."""
    global _PLAN, _ENV_CHECKED
    with _LOCK:
        _PLAN = None
        _ENV_CHECKED = True


def active_plan() -> FaultPlan | None:
    """The installed plan, loading :data:`FAULTFS_ENV` on first use."""
    global _PLAN, _ENV_CHECKED
    if _PLAN is not None:
        return _PLAN
    if not _ENV_CHECKED:
        with _LOCK:
            if not _ENV_CHECKED:
                spec = os.environ.get(FAULTFS_ENV)
                if spec:
                    _PLAN = parse_plan(spec)
                _ENV_CHECKED = True
    return _PLAN


def _count_injection() -> None:
    from repro.obs.metrics import get_metrics_registry

    get_metrics_registry().counter(
        "faultfs.injected", "filesystem faults injected by faultfs"
    ).inc()


def _raise_fault(rule: FaultRule, path: str) -> None:
    _count_injection()
    code = _ERRNO_BY_KIND[rule.kind]
    raise OSError(code, os.strerror(code), path)


def _check(op: str, path: str) -> FaultRule | None:
    plan = active_plan()
    if plan is None:
        return None
    with _LOCK:
        return plan.check(op, path)


# -- the injectable primitives ------------------------------------------------


def fs_open(path: str, flags: int, mode: int = 0o644) -> int:
    """``os.open`` with fault injection; registers the fd's path."""
    rule = _check("open", path)
    if rule is not None:
        _raise_fault(rule, path)
    fd = os.open(path, flags, mode)
    if active_plan() is not None:
        with _LOCK:
            _FD_PATHS[fd] = path
    return fd


def fs_write(fd: int, data: bytes) -> int:
    """``os.write`` with fault injection (``partial`` = torn write)."""
    with _LOCK:
        path = _FD_PATHS.get(fd, "")
    rule = _check("write", path)
    if rule is not None:
        if rule.kind == "partial" and len(data) > 1:
            os.write(fd, data[: len(data) // 2])
        _raise_fault(rule, path)
    return os.write(fd, data)


def fs_fsync(fd: int) -> None:
    """``os.fsync`` with fault injection."""
    with _LOCK:
        path = _FD_PATHS.get(fd, "")
    rule = _check("fsync", path)
    if rule is not None:
        _raise_fault(rule, path)
    os.fsync(fd)


def fs_close(fd: int) -> None:
    """``os.close``; forgets the fd's registered path."""
    with _LOCK:
        _FD_PATHS.pop(fd, None)
    os.close(fd)


def fs_replace(src: str, dst: str) -> None:
    """``os.replace`` with fault injection (matched against ``dst``)."""
    rule = _check("replace", dst)
    if rule is not None:
        _raise_fault(rule, dst)
    os.replace(src, dst)


# -- composed helper ----------------------------------------------------------


def atomic_write_text(path: str, text: str, fsync: bool = True) -> None:
    """Atomic temp+fsync+rename write through the injectable primitives.

    The shared discipline of the disk cache, the checkpoint store and
    the journal's compaction checkpoint: a reader never sees a
    half-written file, and a crash (or injected fault) at any point
    leaves either the old content or the new, plus at worst a temp file
    that the next write cleans up by name reuse.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    temp = f"{path}.tmp-{os.getpid()}"
    fd = fs_open(temp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC)
    try:
        try:
            fs_write(fd, text.encode("utf-8"))
            if fsync:
                fs_fsync(fd)
        finally:
            fs_close(fd)
        fs_replace(temp, path)
    except BaseException:
        try:
            os.unlink(temp)
        except OSError:
            pass
        raise
