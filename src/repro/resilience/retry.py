"""Retry policy: capped exponential backoff with deterministic jitter.

The crash-isolated pool in :mod:`repro.flow.parallel` retries failed
outputs a bounded number of times.  Backoff delays grow exponentially
(so a repeatedly crashing worker cannot busy-spin the pool) and are
jittered to avoid thundering-herd rebuilds — but the jitter is drawn
from a :class:`random.Random` seeded by the policy seed and the attempt
coordinates, so a retry schedule is exactly reproducible from the run's
inputs, matching the determinism contract of the rest of the flow.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry, and how long to wait between tries."""

    max_retries: int = 2
    base_delay: float = 0.05
    max_delay: float = 2.0
    seed: int = 0

    def delay(self, attempt: int, salt: int = 0) -> float:
        """Backoff before retry ``attempt`` (1-based), in seconds.

        ``min(max_delay, base * 2^(attempt-1))`` scaled by a jitter
        factor in [0.5, 1.0) drawn deterministically from
        ``(seed, attempt, salt)``.
        """
        if attempt <= 0:
            return 0.0
        capped = min(self.max_delay, self.base_delay * (2 ** (attempt - 1)))
        rng = random.Random(f"{self.seed}:{attempt}:{salt}")
        return capped * (0.5 + 0.5 * rng.random())

    def delays(self, salt: int = 0) -> list[float]:
        """The whole schedule, for logging/tests."""
        return [self.delay(i, salt) for i in range(1, self.max_retries + 1)]
