"""Resilience layer: deadlines, degradation, retries, checkpoints.

The DAC'96 flow has several loops whose worst case is exponential —
the exhaustive polarity scan, EXORCISM-style cube-pair minimization,
OFDD construction — and a production service cannot let one adversarial
output stall a whole batch.  This package supplies the machinery the
rest of the tree threads through:

:mod:`repro.resilience.budget`
    A wall-clock :class:`~repro.resilience.budget.Budget` carried
    ambiently per run and checked cooperatively inside the expensive
    loops; on exhaustion each stage falls down an *effort-degradation
    ladder* to a cheaper-but-correct result, recording what it gave up.
:mod:`repro.resilience.retry`
    A :class:`~repro.resilience.retry.RetryPolicy` with capped
    exponential backoff and seeded (deterministic) jitter, used by the
    crash-isolated process pool in :mod:`repro.flow.parallel`.
:mod:`repro.resilience.checkpoint`
    An atomic per-circuit JSON :class:`~repro.resilience.checkpoint.
    CheckpointStore` so killed harness sweeps (``table2``, ``ablation``)
    resume where they left off, with resume provenance recorded in the
    run manifest.
:mod:`repro.resilience.lease`
    Cross-process :class:`~repro.resilience.lease.LeaseManager` —
    pid/heartbeat-stamped lease files with stale-holder takeover, so N
    daemons sharing one cache directory never duplicate in-flight work
    (used by the ``repro-serve`` job queue).
:mod:`repro.resilience.breaker`
    A :class:`~repro.resilience.breaker.CircuitBreaker` (consecutive
    failures trip it open, a timed half-open probe closes it) that lets
    the disk-backed cache degrade to memory-only behavior while a disk
    is full or broken.
:mod:`repro.resilience.faultfs`
    Deterministic filesystem fault injection (``ENOSPC``/``EIO``/
    partial-write/fsync-failure by call count and path pattern) behind
    the ``open``/``write``/``fsync``/``rename`` primitives used by the
    journal, disk cache, checkpoint store and history store.

See docs/RESILIENCE.md for the failure taxonomy and the ladder.
"""

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.budget import (
    Budget,
    DegradationRecord,
    budget_tick,
    current_budget,
    effective_budget_seconds,
    install_budget,
    note_degradation,
)
from repro.resilience.checkpoint import CheckpointStore
from repro.resilience.lease import DEFAULT_TTL_SECONDS, Lease, LeaseManager
from repro.resilience.retry import RetryPolicy

__all__ = [
    "Budget",
    "CheckpointStore",
    "CircuitBreaker",
    "DEFAULT_TTL_SECONDS",
    "DegradationRecord",
    "Lease",
    "LeaseManager",
    "RetryPolicy",
    "budget_tick",
    "current_budget",
    "effective_budget_seconds",
    "install_budget",
    "note_degradation",
]
