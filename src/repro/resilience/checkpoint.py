"""Atomic per-circuit checkpoints so killed harness sweeps can resume.

A :class:`CheckpointStore` owns a directory with one JSON file per
checkpointed unit (a circuit for ``table2``, a ``sweep-circuit`` pair
for the ablations) plus a ``manifest.json`` recording every run over the
store — when it started, whether it resumed, and which units it reused
versus recomputed.  Writes go through a temp file in the same directory
followed by ``os.replace``, so a checkpoint is either fully present or
absent; a sweep killed mid-write never leaves a half-written entry for
``--resume`` to trip over (unparsable files are treated as missing and
recomputed).

Checkpoint file format (schema 1)::

    {"schema": 1, "name": "<unit>", "created_unix": <float>,
     "payload": {...}}            # caller-defined, JSON-serializable
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import time

from repro.resilience import faultfs

__all__ = ["CheckpointStore"]

CHECKPOINT_SCHEMA_VERSION = 1

_SAFE = re.compile(r"[^A-Za-z0-9._-]")


def _filename(name: str) -> str:
    return _SAFE.sub("_", name) + ".json"


class CheckpointStore:
    """Directory-backed atomic JSON checkpoints with a run manifest."""

    def __init__(self, directory: str | os.PathLike):
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    # -- atomic JSON -------------------------------------------------------

    def _write_atomic(self, path: pathlib.Path, document: dict) -> None:
        # Routed through the injectable faultfs primitives so disk-fault
        # tests can fail the write/fsync/rename steps deterministically;
        # the helper never leaves a half-written target behind.
        faultfs.atomic_write_text(
            str(path), json.dumps(document, indent=2) + "\n"
        )

    # -- per-unit checkpoints ----------------------------------------------

    def path_for(self, name: str) -> pathlib.Path:
        return self.directory / _filename(name)

    def save(self, name: str, payload: dict) -> pathlib.Path:
        """Atomically checkpoint one finished unit."""
        path = self.path_for(name)
        self._write_atomic(path, {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "name": name,
            "created_unix": time.time(),
            "payload": payload,
        })
        return path

    def load(self, name: str) -> dict | None:
        """The unit's payload, or ``None`` when absent/unreadable.

        Corrupt or wrong-schema files count as missing — resume
        recomputes them rather than failing the whole sweep.
        """
        path = self.path_for(name)
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if document.get("schema") != CHECKPOINT_SCHEMA_VERSION:
            return None
        if document.get("name") != name:
            return None
        payload = document.get("payload")
        return payload if isinstance(payload, dict) else None

    def completed(self) -> list[str]:
        """Names of every loadable checkpoint in the store (sorted)."""
        names = []
        for path in sorted(self.directory.glob("*.json")):
            if path.name == "manifest.json":
                continue
            try:
                document = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if document.get("schema") == CHECKPOINT_SCHEMA_VERSION:
                names.append(document.get("name", path.stem))
        return sorted(names)

    # -- run manifest (resume provenance) ----------------------------------

    @property
    def manifest_path(self) -> pathlib.Path:
        return self.directory / "manifest.json"

    def read_manifest(self) -> dict:
        try:
            document = json.loads(
                self.manifest_path.read_text(encoding="utf-8")
            )
        except (OSError, ValueError):
            return {"schema": CHECKPOINT_SCHEMA_VERSION, "runs": []}
        if not isinstance(document.get("runs"), list):
            document["runs"] = []
        return document

    def record_run(
        self,
        *,
        resumed: bool,
        reused: list[str],
        computed: list[str],
        extra: dict | None = None,
    ) -> dict:
        """Append one run's resume provenance to ``manifest.json``.

        Each entry pins down what this invocation actually did — which
        units it loaded from checkpoints and which it recomputed — so a
        resumed sweep's numbers can be audited after the fact.
        """
        manifest = self.read_manifest()
        entry = {
            "started_unix": time.time(),
            "resumed": resumed,
            "reused": sorted(reused),
            "computed": sorted(computed),
        }
        if extra:
            entry["extra"] = dict(extra)
        manifest["schema"] = CHECKPOINT_SCHEMA_VERSION
        manifest["runs"].append(entry)
        self._write_atomic(self.manifest_path, manifest)
        return entry
