"""Cross-process lease files: pid/heartbeat-stamped mutual exclusion.

When several ``repro-serve`` daemons share one cache/journal directory,
two of them must not spend wall-clock synthesizing the same
``request_key`` at the same time.  A lease is one small JSON file per
key under a shared directory:

.. code-block:: json

    {"schema": 1, "key": "...", "token": "<pid>-<nonce>", "pid": 4711,
     "host": "worker-3", "acquired_unix": 0.0, "heartbeat_unix": 0.0}

Acquisition is an ``O_CREAT | O_EXCL`` create — the filesystem's own
atomicity, no server process needed.  The holder refreshes
``heartbeat_unix`` periodically; a lease whose heartbeat is older than
the TTL is *stale* (its holder was SIGKILL'd or lost the machine) and
may be taken over: the challenger atomically renames its own stamp over
the file and then reads it back, keeping the lease only if its token
survived (verify-after-write, so two racing challengers resolve to at
most one owner).

Leases are an *efficiency* mechanism, not a correctness one: the result
caches remain last-write-wins with content-identical values for equal
keys, so a duplicate synthesis sneaking through a lost race wastes time
but can never produce a wrong or torn answer.  That is why best-effort
file semantics are acceptable here.
"""

from __future__ import annotations

import json
import os
import socket
import time
import uuid
from dataclasses import dataclass

__all__ = ["DEFAULT_TTL_SECONDS", "Lease", "LeaseManager"]

LEASE_SCHEMA_VERSION = 1

#: A holder missing three heartbeat intervals is presumed dead.
DEFAULT_TTL_SECONDS = 15.0


@dataclass
class Lease:
    """A held lease: the proof token needed to heartbeat and release."""

    key: str
    path: str
    token: str
    acquired_unix: float


class LeaseManager:
    """Acquire/heartbeat/release leases under one shared directory."""

    def __init__(self, directory: str,
                 ttl_seconds: float = DEFAULT_TTL_SECONDS,
                 clock=time.time):
        if ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive")
        self.directory = directory
        self.ttl_seconds = ttl_seconds
        self.clock = clock
        #: Stale leases this manager took over (the crash-recovery path).
        self.stale_takeovers = 0
        #: Lease-file operations that failed at the OS level (state dir
        #: deleted mid-run, disk gone read-only).  Work proceeds without
        #: mutual exclusion — leases are efficiency, not correctness.
        self.errors = 0
        os.makedirs(directory, exist_ok=True)

    # -- paths and stamps --------------------------------------------------

    def path_for(self, key: str) -> str:
        """Lease file for ``key`` (slashes flattened: keys are digests)."""
        safe = key.replace("/", "-").replace(os.sep, "-")
        return os.path.join(self.directory, f"{safe}.lease.json")

    def _stamp(self, key: str, token: str, acquired: float) -> dict:
        return {
            "schema": LEASE_SCHEMA_VERSION,
            "key": key,
            "token": token,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "acquired_unix": acquired,
            "heartbeat_unix": self.clock(),
        }

    def read_stamp(self, key: str) -> dict | None:
        """The current holder's stamp, or ``None`` (absent/torn file)."""
        try:
            with open(self.path_for(key), encoding="utf-8") as handle:
                stamp = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        return stamp if isinstance(stamp, dict) else None

    def is_stale(self, stamp: dict | None) -> bool:
        """A missing/torn stamp or an expired heartbeat is stale."""
        if stamp is None:
            return True
        heartbeat = stamp.get("heartbeat_unix")
        if not isinstance(heartbeat, (int, float)):
            return True
        return self.clock() - heartbeat > self.ttl_seconds

    # -- lifecycle ---------------------------------------------------------

    def _create_excl(self, path: str) -> int:
        """``O_CREAT | O_EXCL`` create, recreating a vanished directory.

        If the state directory disappeared mid-run (an operator
        ``rm -rf``, a reaped tmpfs), recreate it and retry once.  When
        even that fails the :class:`OSError` propagates to the caller,
        which degrades to an unbacked lease rather than crashing the
        daemon's worker task.
        """
        flags = os.O_WRONLY | os.O_CREAT | os.O_EXCL
        try:
            return os.open(path, flags, 0o644)
        except FileExistsError:
            raise
        except OSError:
            os.makedirs(self.directory, exist_ok=True)
            return os.open(path, flags, 0o644)

    def try_acquire(self, key: str) -> Lease | None:
        """One attempt to take the lease; ``None`` if a live peer holds it.

        Best-effort under filesystem failure: when the lease file cannot
        be created at all (state directory deleted and not recreatable),
        the returned lease is *unbacked* — synthesis proceeds without
        cross-daemon exclusion, ``errors`` counts the event, and the
        content-addressed caches keep duplicated work harmless.
        """
        path = self.path_for(key)
        token = f"{os.getpid()}-{uuid.uuid4().hex[:12]}"
        acquired = self.clock()
        stamp = self._stamp(key, token, acquired)
        payload = json.dumps(stamp, sort_keys=True).encode("utf-8")
        try:
            fd = self._create_excl(path)
        except FileExistsError:
            current = self.read_stamp(key)
            if not self.is_stale(current):
                return None
            # Stale (or torn) holder: rename our stamp over the file and
            # verify we won — at most one challenger reads its own token
            # back after the dust settles.
            temp = f"{path}.takeover-{token}"
            try:
                with open(temp, "wb") as handle:
                    handle.write(payload)
                os.replace(temp, path)
            except OSError:
                try:
                    os.unlink(temp)
                except OSError:
                    pass
                return None
            after = self.read_stamp(key)
            if after is None or after.get("token") != token:
                return None
            self.stale_takeovers += 1
            return Lease(key=key, path=path, token=token,
                         acquired_unix=acquired)
        except OSError:
            # The lease directory is gone and cannot come back.  Hand
            # out an unbacked lease: heartbeat() will report it lost,
            # release() is a no-op, and the work still happens.
            self.errors += 1
            return Lease(key=key, path=path, token=token,
                         acquired_unix=acquired)
        try:
            os.write(fd, payload)
        finally:
            os.close(fd)
        return Lease(key=key, path=path, token=token, acquired_unix=acquired)

    def heartbeat(self, lease: Lease) -> bool:
        """Refresh the holder stamp; ``False`` if the lease was lost."""
        current = self.read_stamp(lease.key)
        if current is None or current.get("token") != lease.token:
            return False
        stamp = self._stamp(lease.key, lease.token, lease.acquired_unix)
        temp = f"{lease.path}.hb-{lease.token}"
        try:
            with open(temp, "w", encoding="utf-8") as handle:
                json.dump(stamp, handle, sort_keys=True)
            os.replace(temp, lease.path)
        except OSError:
            try:
                os.unlink(temp)
            except OSError:
                pass
            return False
        return True

    def release(self, lease: Lease) -> None:
        """Drop the lease if still held by us (idempotent)."""
        current = self.read_stamp(lease.key)
        if current is not None and current.get("token") == lease.token:
            try:
                os.unlink(lease.path)
            except OSError:
                pass
