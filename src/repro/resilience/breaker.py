"""A small circuit breaker: trip on consecutive failures, re-probe later.

Used by the disk-backed result cache to degrade to memory-only behavior
when the disk goes bad (``ENOSPC``, ``EIO``): after
``failure_threshold`` consecutive write failures the breaker *opens*
and the caller skips the failing operation entirely — no syscall, no
exception, no latency — instead of hammering a dead disk on every
request.  After ``cooldown_seconds`` the breaker lets exactly one probe
through (*half-open*); a successful probe closes the breaker, a failed
one re-opens it and restarts the cooldown.

The breaker is deliberately free of metrics/registry dependencies —
callers wire ``on_state_change`` to publish whatever gauge they want —
and takes an injectable ``clock`` so tests drive the cooldown without
sleeping.
"""

from __future__ import annotations

import threading
import time

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Consecutive-failure breaker with a timed half-open re-probe."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, name: str = "", failure_threshold: int = 3,
                 cooldown_seconds: float = 30.0,
                 clock=time.monotonic, on_state_change=None):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if cooldown_seconds < 0:
            raise ValueError("cooldown_seconds must not be negative")
        self.name = name
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self.clock = clock
        self.on_state_change = on_state_change
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        #: Closed -> open transitions (the "disk went bad" count).
        self.trips = 0

    # -- state -------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def _transition(self, state: str) -> None:
        """Set the state (caller holds the lock) and notify outside it."""
        if state == self._state:
            return
        self._state = state
        if self.on_state_change is not None:
            # Fire the callback without the lock: it may re-enter
            # (metrics registries take their own locks).
            callback = self.on_state_change
            self._lock.release()
            try:
                callback(state)
            finally:
                self._lock.acquire()

    # -- the protocol ------------------------------------------------------

    def allow(self) -> bool:
        """May the caller attempt the guarded operation right now?

        Open state answers ``False`` until the cooldown elapses, then
        admits exactly one half-open probe; the probe's
        :meth:`record_success`/:meth:`record_failure` decides whether
        the breaker closes again.
        """
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN:
                if self.clock() - self._opened_at < self.cooldown_seconds:
                    return False
                self._transition(self.HALF_OPEN)
                self._probe_inflight = True
                return True
            # Half-open: one probe at a time.
            if self._probe_inflight:
                return False
            self._probe_inflight = True
            return True

    def record_success(self) -> None:
        """The guarded operation worked: close (or stay closed)."""
        with self._lock:
            self._consecutive_failures = 0
            self._probe_inflight = False
            if self._state != self.CLOSED:
                self._transition(self.CLOSED)

    def record_failure(self) -> None:
        """The guarded operation failed: trip or re-open."""
        with self._lock:
            self._consecutive_failures += 1
            self._probe_inflight = False
            if self._state == self.CLOSED:
                if self._consecutive_failures >= self.failure_threshold:
                    self.trips += 1
                    self._opened_at = self.clock()
                    self._transition(self.OPEN)
            else:
                # A failed half-open probe (or a failure recorded while
                # open) restarts the cooldown.
                self._opened_at = self.clock()
                self._transition(self.OPEN)
