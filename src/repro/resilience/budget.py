"""Wall-clock budgets, cooperative deadline checks, degradation notes.

A :class:`Budget` is created once per synthesis run (from
``SynthesisOptions.budget_seconds`` or the ``REPRO_BUDGET_SECONDS``
environment override) and installed *ambiently*, mirroring the span
tracer in :mod:`repro.obs.spans`: hot loops call the module-level
:func:`budget_tick`, which is a single global read plus an integer
increment when no budget is active, and a strided ``time.monotonic()``
comparison when one is.  On exhaustion the check raises
:class:`~repro.errors.BudgetExceededError`; the stage that catches it
falls down the effort-degradation ladder (see docs/RESILIENCE.md) and
records what it gave up via :func:`note_degradation`.

Deadlines are ``time.monotonic()`` instants — on Linux the monotonic
clock is system-wide, so a deadline computed in the parent is directly
comparable inside a pool worker on the same machine, which is how the
per-run budget spans the process pool.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass

from repro.errors import BudgetExceededError

__all__ = [
    "Budget",
    "DegradationRecord",
    "budget_tick",
    "budget_tick_many",
    "current_budget",
    "effective_budget_seconds",
    "install_budget",
    "note_degradation",
]

#: Checks between clock reads in :meth:`Budget.tick` (hot-loop stride).
TICK_STRIDE = 256

#: Environment override for the per-run budget (seconds, float).  Lets a
#: deployment cap every run without touching call sites, and lets the
#: ``budget-starvation`` fuzz fault starve the flow from outside.
BUDGET_ENV = "REPRO_BUDGET_SECONDS"


@dataclass
class DegradationRecord:
    """One rung taken down the effort-degradation ladder."""

    stage: str  # e.g. "polarity", "factor-ofdd", "esop-minimize"
    fallback: str  # what the stage degraded *to*, e.g. "greedy"
    where: str = ""  # the check that fired, for diagnosis

    def label(self) -> str:
        """Compact ``stage->fallback`` form used in reports."""
        return f"{self.stage}->{self.fallback}"

    def as_dict(self) -> dict:
        return {"stage": self.stage, "fallback": self.fallback,
                "where": self.where}


class Budget:
    """A wall-clock budget with strided cooperative checks.

    ``deadline`` is an absolute ``time.monotonic()`` instant (``None``
    means unlimited — every check is then a cheap no-op).  The budget
    also collects the :class:`DegradationRecord` list for the pipeline
    currently running under it; :meth:`drain_degradations` hands the
    records to whoever builds the output report.
    """

    __slots__ = ("seconds", "deadline", "_ticks", "degradations")

    def __init__(self, seconds: float | None, deadline: float | None):
        self.seconds = seconds
        self.deadline = deadline
        self._ticks = 0
        self.degradations: list[DegradationRecord] = []

    @classmethod
    def start(cls, seconds: float | None) -> "Budget":
        """A budget starting now; ``None`` seconds means unlimited."""
        if seconds is None:
            return cls(None, None)
        return cls(seconds, time.monotonic() + max(0.0, seconds))

    @classmethod
    def until(cls, deadline: float | None) -> "Budget":
        """A budget against an existing monotonic deadline (pool workers)."""
        if deadline is None:
            return cls(None, None)
        return cls(None, deadline)

    # -- checks ------------------------------------------------------------

    def remaining(self) -> float:
        """Seconds left (``inf`` when unlimited, floored at 0)."""
        if self.deadline is None:
            return float("inf")
        return max(0.0, self.deadline - time.monotonic())

    def expired(self) -> bool:
        return self.deadline is not None and time.monotonic() >= self.deadline

    def check(self, where: str) -> None:
        """Raise :class:`BudgetExceededError` when the deadline passed."""
        if self.expired():
            raise BudgetExceededError(where)

    def tick(self, where: str) -> None:
        """Strided check for hot loops: reads the clock every
        :data:`TICK_STRIDE` calls, raising like :meth:`check`."""
        if self.deadline is None:
            return
        self._ticks += 1
        if self._ticks % TICK_STRIDE:
            return
        self.check(where)

    def tick_many(self, where: str, count: int) -> None:
        """Advance the tick counter by ``count`` at once.

        Batched loops (vectorized pair scans) account for the same
        amount of work as ``count`` sequential :meth:`tick` calls; the
        clock is read when the batch crosses a stride boundary, exactly
        as the equivalent tick sequence would have.
        """
        if self.deadline is None or count <= 0:
            return
        before = self._ticks
        self._ticks = before + count
        if before // TICK_STRIDE != self._ticks // TICK_STRIDE:
            self.check(where)

    # -- degradation notes -------------------------------------------------

    def note(self, record: DegradationRecord) -> None:
        self.degradations.append(record)

    def drain_degradations(self) -> list[DegradationRecord]:
        """Hand over (and clear) the records noted so far — called once
        per output pipeline so notes never leak across outputs."""
        drained = self.degradations
        self.degradations = []
        return drained


# -- the ambient budget ------------------------------------------------------
#
# Per-thread, like the ambient span tracer: two synthesis runs on
# different threads (the ``repro-serve`` worker threads) must not see —
# or drain degradation notes from — each other's budgets.  Pool workers
# never rely on inheriting this slot across ``fork``: the deadline
# travels in the task payload and each worker installs its own budget.


class _AmbientBudget(threading.local):
    budget: Budget | None = None


_AMBIENT = _AmbientBudget()


def install_budget(budget: Budget | None) -> Budget | None:
    """Make ``budget`` this thread's ambient budget; returns the replaced one."""
    previous = _AMBIENT.budget
    _AMBIENT.budget = budget
    return previous


def current_budget() -> Budget | None:
    return _AMBIENT.budget


def budget_tick(where: str) -> None:
    """Strided ambient check — effectively free when no budget is on."""
    budget = _AMBIENT.budget
    if budget is not None:
        budget.tick(where)


def budget_tick_many(where: str, count: int) -> None:
    """Ambient :meth:`Budget.tick_many` — bulk accounting for batched scans."""
    budget = _AMBIENT.budget
    if budget is not None:
        budget.tick_many(where, count)


def note_degradation(stage: str, fallback: str, where: str = "") -> None:
    """Record one ladder step on the ambient budget (no-op without one).

    The note lands on the output report of the pipeline being run (via
    :meth:`Budget.drain_degradations`) and from there in the trace and
    the ``resilience.degradations`` metric; a zero-length span marks the
    instant in the span tree when tracing is on.
    """
    budget = _AMBIENT.budget
    if budget is None:
        return
    budget.note(DegradationRecord(stage=stage, fallback=fallback, where=where))
    from repro.obs.spans import span as obs_span

    with obs_span("resilience-degrade", category="resilience") as node:
        if node is not None:
            node.set(stage=stage, fallback=fallback, where=where)


def effective_budget_seconds(explicit: float | None) -> float | None:
    """The run budget: the explicit option, else the env override.

    An explicit ``budget_seconds`` on the options always wins; otherwise
    :data:`BUDGET_ENV` (unparsable values are ignored) lets operators —
    and the ``budget-starvation`` fault injection — impose one globally.
    """
    if explicit is not None:
        return explicit
    raw = os.environ.get(BUDGET_ENV)
    if raw is None:
        return None
    try:
        return float(raw)
    except ValueError:
        return None
