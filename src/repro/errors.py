"""Exception hierarchy for the repro library."""

__all__ = [
    "BudgetExceededError",
    "CacheIntegrityError",
    "DimensionError",
    "LibraryError",
    "OverloadedError",
    "ParseError",
    "QuotaExceededError",
    "ReproError",
    "TooManyVariablesError",
    "UnknownCircuitError",
    "VerificationError",
    "WorkerCrashError",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class DimensionError(ReproError):
    """Operands talk about different numbers of variables."""


class TooManyVariablesError(ReproError):
    """A truth-table based operation was requested for too large a support."""


class ParseError(ReproError):
    """Malformed textual input (PLA, genlib, expression)."""


class VerificationError(ReproError):
    """A synthesized network is not equivalent to its specification."""


class LibraryError(ReproError):
    """A cell library is malformed or cannot cover the subject graph."""


class UnknownCircuitError(ReproError, KeyError):
    """A benchmark circuit name is not in the registry."""


class BudgetExceededError(ReproError):
    """A cooperative deadline check fired inside an expensive loop.

    Raised by :meth:`repro.resilience.budget.Budget.check` (and the
    strided :meth:`~repro.resilience.budget.Budget.tick`) when the run's
    wall-clock budget is exhausted.  Stages of the flow catch this and
    degrade to a cheaper-but-correct result (see docs/RESILIENCE.md);
    it only propagates out of :func:`repro.core.synthesis.synthesize_fprm`
    when no fallback rung exists.
    """

    def __init__(self, where: str, remaining: float = 0.0):
        self.where = where
        self.remaining = remaining
        super().__init__(f"budget exhausted in {where}")


class WorkerCrashError(ReproError):
    """A pool worker died (crash or hang) and retries were exhausted."""

    def __init__(self, output: str, attempts: int, reason: str):
        self.output = output
        self.attempts = attempts
        self.reason = reason
        super().__init__(
            f"worker for output {output!r} failed after {attempts} "
            f"attempt(s): {reason}"
        )


class QuotaExceededError(ReproError):
    """A client exhausted its admission quota (token bucket empty).

    Raised at submission time by the serving tier's admission control
    (:class:`repro.serve.quota.ClientQuotas`), mapped by the HTTP layer
    to a ``429 Too Many Requests`` response carrying ``retry_after``
    (whole seconds until the bucket has a token again) in the
    ``Retry-After`` header.
    """

    def __init__(self, client: str, retry_after: float):
        self.client = client
        self.retry_after = retry_after
        super().__init__(
            f"quota exhausted for client {client!r}; "
            f"retry in {retry_after:.0f}s"
        )


class OverloadedError(ReproError):
    """The serving tier shed this request instead of queueing it.

    Raised at submission time when the job queue is past its high-water
    mark, or when the daemon is in degraded mode (disk headroom low,
    journal writes failing) and the request's priority class is shed
    first.  The HTTP layer maps it to ``503 Service Unavailable`` with a
    ``Retry-After`` header — load shedding is loud and typed, never a
    silent queue that grows until the process dies.
    """

    def __init__(self, reason: str, retry_after: float):
        self.reason = reason
        self.retry_after = retry_after
        super().__init__(
            f"server overloaded ({reason}); retry in {retry_after:.0f}s"
        )


class CacheIntegrityError(ReproError):
    """A result-cache entry failed its checksum verification.

    The cache quarantines and recomputes corrupt entries instead of
    raising during normal operation; this error is reserved for callers
    that ask for strict verification (``ResultCache.verify_all``).
    """
