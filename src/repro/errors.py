"""Exception hierarchy for the repro library."""


class ReproError(Exception):
    """Base class for all library-specific errors."""


class DimensionError(ReproError):
    """Operands talk about different numbers of variables."""


class TooManyVariablesError(ReproError):
    """A truth-table based operation was requested for too large a support."""


class ParseError(ReproError):
    """Malformed textual input (PLA, genlib, expression)."""


class VerificationError(ReproError):
    """A synthesized network is not equivalent to its specification."""


class LibraryError(ReproError):
    """A cell library is malformed or cannot cover the subject graph."""


class UnknownCircuitError(ReproError, KeyError):
    """A benchmark circuit name is not in the registry."""
