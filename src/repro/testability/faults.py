"""Single stuck-at fault model on logic networks.

Faults live on gate *output* wires and on each gate *input pin*; inverters
are treated as part of the wire (their faults collapse onto the driver),
matching the usual fault-collapsing convention and the paper's gate-level
analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.netlist import GateType, Network


@dataclass(frozen=True, order=True)
class Fault:
    """Stuck-at fault: ``pin`` is -1 for the gate output, else the fanin
    position the fault sits on."""

    node: int
    pin: int
    value: int

    def describe(self, net: Network) -> str:
        kind = net.type_of(self.node).value
        where = "out" if self.pin == -1 else f"in{self.pin}"
        return f"{kind}@{self.node}.{where} s-a-{self.value}"


def fault_list(net: Network) -> list[Fault]:
    """All single stuck-at faults on live AND/OR/XOR gates and PIs."""
    faults: list[Fault] = []
    for node in net.live_nodes():
        gate = net.type_of(node)
        if gate in (GateType.CONST0, GateType.CONST1, GateType.NOT):
            continue
        for value in (0, 1):
            faults.append(Fault(node, -1, value))
        if gate in (GateType.AND, GateType.OR, GateType.XOR):
            for pin in range(len(net.fanin(node))):
                for value in (0, 1):
                    faults.append(Fault(node, pin, value))
    return faults
