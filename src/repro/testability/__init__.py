"""Single stuck-at testability analysis.

Backs the paper's testability claims: synthesized FPRM networks are
irredundant and the primary-input pattern sets derived from the cubes
(AZ + OC + AO + SA1) form a complete single-stuck-at test set — no
conventional test generation needed.
"""

from repro.testability.faults import Fault, fault_list
from repro.testability.fault_sim import FaultSimResult, fault_coverage
from repro.testability.compaction import compact_test_set, detection_matrix
from repro.testability.test_gen import pattern_test_set

__all__ = [
    "Fault",
    "FaultSimResult",
    "compact_test_set",
    "detection_matrix",
    "fault_coverage",
    "fault_list",
    "pattern_test_set",
]
