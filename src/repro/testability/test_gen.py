"""Test sets derived from the FPRM pattern sets (no ATPG).

The paper's claim (Sections 1 and 6): for circuits synthesized from FPRM
forms, a complete single-stuck-at test set can be read off the cubes —
the AZ / OC / AO / SA1 pattern families of Section 4 — without running
conventional test generation.  :func:`pattern_test_set` assembles exactly
those patterns for every output of a synthesis result and returns them as
primary-input vectors ready for fault simulation.
"""

from __future__ import annotations

import numpy as np

from repro.core.patterns import full_pattern_set, to_pi_patterns
from repro.core.synthesis import SynthesisResult
from repro.expr.esop import FprmForm
from repro.fprm.polarity import choose_polarity
from repro.spec import CircuitSpec
from repro.truth.spectra import fprm_from_table
from repro.truth.table import MAX_DENSE_VARS


def pattern_test_set(spec: CircuitSpec,
                     result: SynthesisResult | None = None) -> np.ndarray:
    """PI test vectors (shape ``(num_inputs, V)``) from the FPRM cubes.

    Per output: the one-cube set, the stuck-at-1 set, all-zero and
    all-one, translated from literal space through the output's polarity
    vector (taken from the synthesis reports when ``result`` is given,
    recomputed otherwise) and embedded into the global inputs with
    don't-care positions at 0.
    """
    vectors: list[int] = []
    seen: set[int] = set()
    for index, output in enumerate(spec.outputs):
        if output.width > MAX_DENSE_VARS:
            continue
        table = output.local_table()
        if result is not None and index < len(result.reports):
            polarity = result.reports[index].polarity
        else:
            polarity = choose_polarity(table)
        form: FprmForm = fprm_from_table(table, polarity)
        local_patterns = to_pi_patterns(form, full_pattern_set(form))
        for pattern in local_patterns:
            global_pattern = 0
            for j, var in enumerate(output.support):
                if (pattern >> j) & 1:
                    global_pattern |= 1 << var
            if global_pattern not in seen:
                seen.add(global_pattern)
                vectors.append(global_pattern)
    if not vectors:
        vectors = [0]
    out = np.zeros((spec.num_inputs, len(vectors)), dtype=np.uint8)
    for column, pattern in enumerate(vectors):
        for var in range(spec.num_inputs):
            if (pattern >> var) & 1:
                out[var, column] = 1
    return out
