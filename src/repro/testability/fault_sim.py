"""Bit-parallel serial-fault simulation.

For each fault the whole pattern set is simulated in one vectorized pass
(patterns are the parallel dimension, faults the serial one) and compared
against the fault-free responses; a fault is detected when any output
differs on any pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.netlist import GateType, Network
from repro.obs.spans import span as obs_span
from repro.testability.faults import Fault, fault_list


@dataclass
class FaultSimResult:
    total: int
    detected: int
    undetected: list[Fault] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        return 1.0 if self.total == 0 else self.detected / self.total


def _simulate_with_fault(
    net: Network, inputs: np.ndarray, fault: Fault | None
) -> np.ndarray:
    width = inputs.shape[1]
    values: dict[int, np.ndarray] = {
        0: np.zeros(width, dtype=np.uint8),
        1: np.ones(width, dtype=np.uint8),
    }

    def pin_value(node: int, pin: int) -> np.ndarray:
        value = values[net.fanin(node)[pin]]
        if fault is not None and fault.node == node and fault.pin == pin:
            return np.full(width, fault.value, dtype=np.uint8)
        return value

    for node in net.live_nodes():
        gate = net.type_of(node)
        if gate is GateType.PI:
            value = inputs[net.pi_index(node)]
        elif gate is GateType.NOT:
            value = pin_value(node, 0) ^ 1
        elif gate is GateType.AND:
            value = pin_value(node, 0) & pin_value(node, 1)
        elif gate is GateType.OR:
            value = pin_value(node, 0) | pin_value(node, 1)
        elif gate is GateType.XOR:
            value = pin_value(node, 0) ^ pin_value(node, 1)
        else:
            value = values[node]
        if fault is not None and fault.node == node and fault.pin == -1:
            value = np.full(width, fault.value, dtype=np.uint8)
        values[node] = value
    if not net.outputs:
        return np.zeros((0, width), dtype=np.uint8)
    return np.stack([values[out] for out in net.outputs])


def fault_coverage(
    net: Network, patterns: np.ndarray, faults: list[Fault] | None = None
) -> FaultSimResult:
    """Coverage of ``patterns`` (shape ``(num_inputs, V)``) on the net."""
    with obs_span("fault-simulation", category="algo") as node:
        if faults is None:
            faults = fault_list(net)
        golden = _simulate_with_fault(net, patterns, None)
        detected = 0
        undetected: list[Fault] = []
        for fault in faults:
            faulty = _simulate_with_fault(net, patterns, fault)
            if (faulty != golden).any():
                detected += 1
            else:
                undetected.append(fault)
        result = FaultSimResult(len(faults), detected, undetected)
        if node is not None:
            node.set(faults=result.total, patterns=int(patterns.shape[1]),
                     detected=result.detected, coverage=result.coverage)
        return result
