"""Test-set compaction: a minimal-ish subset keeping full coverage.

The cube-derived pattern sets are already small, but many patterns detect
overlapping fault sets; reverse-order greedy compaction (drop a pattern
if the rest still detect everything) typically shrinks them further —
useful when the test set feeds real ATE time.
"""

from __future__ import annotations

import numpy as np

from repro.network.netlist import Network
from repro.testability.fault_sim import _simulate_with_fault
from repro.testability.faults import Fault, fault_list


def detection_matrix(net: Network, patterns: np.ndarray,
                     faults: list[Fault] | None = None) -> np.ndarray:
    """Boolean matrix [fault, pattern]: does the pattern detect it?"""
    if faults is None:
        faults = fault_list(net)
    golden = _simulate_with_fault(net, patterns, None)
    matrix = np.zeros((len(faults), patterns.shape[1]), dtype=bool)
    for row, fault in enumerate(faults):
        faulty = _simulate_with_fault(net, patterns, fault)
        matrix[row] = (faulty != golden).any(axis=0)
    return matrix


def compact_test_set(net: Network, patterns: np.ndarray,
                     faults: list[Fault] | None = None) -> np.ndarray:
    """Greedy reverse compaction preserving the detected-fault set."""
    if faults is None:
        faults = fault_list(net)
    matrix = detection_matrix(net, patterns, faults)
    detectable = matrix.any(axis=1)
    keep = list(range(patterns.shape[1]))
    for column in reversed(range(patterns.shape[1])):
        trial = [c for c in keep if c != column]
        if not trial:
            continue
        still = matrix[:, trial].any(axis=1)
        if (still == detectable).all():
            keep = trial
    return patterns[:, keep]
