"""journalctl for the serve job journal: inspect, compact, verify.

    python -m repro.serve.journalctl inspect [--state-dir DIR] [--json]
    python -m repro.serve.journalctl compact [--state-dir DIR]
                                             [--keep-segments N] [--json]
    python -m repro.serve.journalctl verify  [--state-dir DIR] [--json]

Operates on the segmented journal a durable ``repro-serve`` writes
under its state directory (``--state-dir``, or the
``REPRO_SERVE_STATE_DIR`` environment variable — the same resolution
the daemon uses).

``inspect``
    Per-file shape of the journal (bytes, records, torn tails), the
    checkpoint's cumulative counters, and the replay summary (pending /
    finished keys) — what a boot of the daemon would see.
``compact``
    Seal the current tail as a segment, then fold sealed segments into
    the checksummed checkpoint, keeping the newest ``--keep-segments``
    (default 0 here: the CLI compacts everything it can; the daemon's
    automatic compaction keeps its configured window).  Safe while a
    daemon is running in the sense that no acknowledged event is lost —
    but rotation against a live writer is racy, so prefer running it
    against idle state dirs.
``verify``
    Integrity check against what the write discipline promises: the
    checkpoint is written atomically and checksummed, so its SHA-256
    must match its body and every body line must parse.  (Torn lines
    in the append-only segments/tail are the shape a crash
    legitimately leaves — healed by the next append, skipped by
    readers — and are reported by ``inspect``, not failed here.)
    Exits 0 when sound, 1 when corruption is found — CI gates on this
    after the disk-fault gauntlet.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.serve.journal import JobJournal
from repro.serve.server import JOURNAL_FILENAME, resolve_state_dir

__all__ = ["main"]


def _journal(state_dir: str | None) -> JobJournal:
    resolved = resolve_state_dir(state_dir)
    if resolved is None:
        raise SystemExit(
            "journalctl: no state dir (pass --state-dir or set "
            "REPRO_SERVE_STATE_DIR)")
    return JobJournal(os.path.join(resolved, JOURNAL_FILENAME))


def cmd_inspect(args: argparse.Namespace) -> int:
    journal = _journal(args.state_dir)
    scan = journal.scan()
    if args.json:
        print(json.dumps(scan, indent=2, sort_keys=True))
        return 0
    print(f"journal: {journal.path}")
    checkpoint = scan["checkpoint"]
    if checkpoint["present"]:
        state = "CORRUPT" if checkpoint["corrupt"] else "ok"
        print(f"  checkpoint: {state}, "
              f"{checkpoint['retired']} keys retired over "
              f"{checkpoint['compactions']} compaction(s)")
    else:
        print("  checkpoint: none")
    for info in scan["files"]:
        if info.get("missing"):
            print(f"  {os.path.basename(info['path'])}: missing")
            continue
        notes = []
        if info["torn_tail"]:
            notes.append("torn tail")
        if info["unparsable_mid"]:
            notes.append(f"{info['unparsable_mid']} unparsable")
        suffix = f" ({', '.join(notes)})" if notes else ""
        print(f"  {os.path.basename(info['path'])}: "
              f"{info['records']} records, {info['bytes']} bytes{suffix}")
    print(f"  replay: {scan['pending']} pending, "
          f"{scan['finished']} finished, "
          f"{scan['skipped_schema']} skipped (schema), "
          f"{scan['skipped_malformed']} skipped (malformed)")
    return 0


def cmd_compact(args: argparse.Namespace) -> int:
    journal = _journal(args.state_dir)
    sealed = journal.rotate()
    stats = journal.compact(keep=args.keep_segments)
    stats["rotated"] = sealed is not None
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
    else:
        print(f"compacted {stats['compacted_segments']} segment(s), "
              f"retired {stats['retired']} finished key(s), "
              f"{stats['kept']} segment(s) kept")
        if "error" in stats:
            print(f"compaction failed: {stats['error']}", file=sys.stderr)
    return 1 if "error" in stats else 0


def cmd_verify(args: argparse.Namespace) -> int:
    journal = _journal(args.state_dir)
    problems = journal.verify()
    if args.json:
        print(json.dumps({"ok": not problems, "problems": problems},
                         indent=2, sort_keys=True))
    elif problems:
        for problem in problems:
            print(f"verify: {problem}", file=sys.stderr)
    else:
        print("verify: journal is sound")
    return 1 if problems else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-journalctl",
        description="inspect/compact/verify the repro-serve job journal",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    inspect = sub.add_parser("inspect", help="per-file journal shape")
    compact = sub.add_parser("compact", help="rotate + fold into checkpoint")
    compact.add_argument("--keep-segments", type=int, default=0, metavar="N",
                         help="newest sealed segments to leave "
                              "un-compacted (default 0: fold everything)")
    verify = sub.add_parser("verify", help="integrity check (exit 1 on "
                                           "corruption)")
    for command in (inspect, compact, verify):
        command.add_argument("--state-dir", default=None, metavar="DIR",
                             help="serve state dir (default: "
                                  "REPRO_SERVE_STATE_DIR)")
        command.add_argument("--json", action="store_true",
                             help="machine-readable output")

    args = parser.parse_args(argv)
    handler = {"inspect": cmd_inspect, "compact": cmd_compact,
               "verify": cmd_verify}[args.command]
    return handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
