"""Small blocking client for repro-serve (urllib, stdlib only).

Used by the test suite and the CI smoke job; handy from scripts too::

    from repro.serve.client import ServeClient
    client = ServeClient("http://127.0.0.1:8348")
    job = client.synthesize(pla_text, wait=True)
    print(job["result"]["two_input_gates"])

Backpressure (429 from a drained quota bucket, 503 from overload
shedding) surfaces as the same typed errors the server raises
in-process — :class:`~repro.errors.QuotaExceededError` and
:class:`~repro.errors.OverloadedError`, each carrying the server's
``Retry-After``.  Pass ``retries=N`` to let the client absorb that
backpressure itself: it sleeps for the server's ``Retry-After``
(bounded by the retry policy's capped exponential backoff with
deterministic jitter) and resubmits, raising only once the budget is
spent.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.errors import OverloadedError, QuotaExceededError
from repro.resilience.retry import RetryPolicy

__all__ = ["ServeClient"]


class ServeClient:
    def __init__(self, base_url: str, timeout: float = 60.0,
                 retries: int = 0,
                 retry_policy: RetryPolicy | None = None):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = max(0, retries)
        self.retry_policy = retry_policy or RetryPolicy(
            max_retries=self.retries, base_delay=0.1, max_delay=5.0)
        #: Backpressure retries actually performed (test/telemetry hook).
        self.backoff_retries = 0
        self._sleep = time.sleep  # injectable for tests

    def _request(self, method: str, path: str, body: dict | None = None):
        data = json.dumps(body).encode("utf-8") if body is not None else None
        req = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                payload = resp.read()
                ctype = resp.headers.get("Content-Type", "")
                if ctype.startswith("application/json"):
                    return json.loads(payload.decode("utf-8"))
                return payload.decode("utf-8")
        except urllib.error.HTTPError as exc:
            if exc.code in (429, 503):
                # Surface the daemon's backpressure as the same typed
                # errors the queue raises in-process.
                retry_after = float(exc.headers.get("Retry-After") or 1.0)
                doc = {}
                try:
                    doc = json.loads(exc.read().decode("utf-8"))
                    retry_after = float(doc.get("retry_after", retry_after))
                except (ValueError, UnicodeDecodeError):
                    pass
                if exc.code == 429:
                    raise QuotaExceededError(
                        str(doc.get("client", "unknown")), retry_after
                    ) from exc
                raise OverloadedError(
                    str(doc.get("reason", "overloaded")), retry_after
                ) from exc
            raise

    def _request_with_backoff(self, method: str, path: str,
                              body: dict | None = None):
        """``_request`` plus automatic retry on 429/503 backpressure.

        The sleep honors the server's ``Retry-After`` but never exceeds
        the policy's ``max_delay`` — a server drowning in backlog may
        advertise a long pause, and a client that obeys it verbatim can
        stall a test harness for a minute per attempt.
        """
        attempt = 0
        while True:
            try:
                return self._request(method, path, body)
            except (QuotaExceededError, OverloadedError) as exc:
                if attempt >= self.retries:
                    raise
                delay = min(
                    self.retry_policy.max_delay,
                    max(exc.retry_after,
                        self.retry_policy.delay(attempt + 1)),
                )
                attempt += 1
                self.backoff_retries += 1
                self._sleep(delay)

    # -- endpoints ---------------------------------------------------------

    def synthesize(self, pla: str, name: str = "request",
                   options: dict | None = None, wait: bool = True,
                   priority: str | None = None,
                   client: str | None = None) -> dict:
        body: dict = {
            "pla": pla, "name": name, "options": options or {}, "wait": wait,
        }
        if priority is not None:
            body["priority"] = priority
        if client is not None:
            body["client"] = client
        return self._request_with_backoff("POST", "/synthesize", body)

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def trace(self, job_id: str) -> dict:
        """The request's span tree (404 until the job is done)."""
        return self._request("GET", f"/jobs/{job_id}/trace")

    def jobs(self) -> dict:
        return self._request("GET", "/jobs")

    def metrics(self) -> str:
        return self._request("GET", "/metrics")

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    # -- conveniences ------------------------------------------------------

    def wait_job(self, job_id: str, timeout: float = 60.0,
                 poll: float = 0.1) -> dict:
        """Poll ``/jobs/<id>`` until the job leaves queued/running."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.job(job_id)
            if doc["state"] not in ("queued", "running"):
                return doc
            if time.monotonic() > deadline:
                raise TimeoutError(f"{job_id} still {doc['state']}")
            time.sleep(poll)

    def wait_ready(self, timeout: float = 30.0, poll: float = 0.1) -> dict:
        """Poll ``/healthz`` until the daemon answers (startup race)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.health()
            except (urllib.error.URLError, ConnectionError, OSError):
                if time.monotonic() > deadline:
                    raise
                time.sleep(poll)
