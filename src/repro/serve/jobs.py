"""Job queue with in-flight request deduplication.

Every submission is keyed by :meth:`SynthesisEngine.request_key` — the
``spec digest / options fingerprint`` identity also used by the result
cache and the run manifest.  Submitting a request whose key matches a
queued or running job does **not** enqueue a second synthesis: the
caller is attached to the existing job and gets the same result
(``Job.submissions`` counts how many callers share it).  Keys equal ⇒
results equal, so deduplication can never serve a wrong answer.

All queue state is mutated on the event-loop thread only; the actual
synthesis runs in a thread-pool executor (and, for multi-output specs,
fans out into the crash-isolated process pool via ``options.jobs``),
so the loop stays responsive while jobs run.
"""

from __future__ import annotations

import asyncio
import enum
import itertools
import time
from dataclasses import dataclass, field

from repro.core.options import (
    ControllabilityEngine,
    FactorMethod,
    SynthesisOptions,
)
from repro.engine import SynthesisEngine
from repro.fprm.polarity import PolarityStrategy
from repro.network.blif import write_blif
from repro.obs.logs import log_event
from repro.obs.metrics import get_metrics_registry
from repro.obs.runctx import RunContext, install_run_context, new_correlation_id
from repro.power import estimate_power
from repro.spec import CircuitSpec
from repro.timing import network_delay

__all__ = ["Job", "JobQueue", "JobState", "options_from_json"]

#: JSON-settable synthesis knobs: name -> converter.  A whitelist, not
#: ``getattr`` on the dataclass — the service must not expose knobs that
#: change the result silently (``trace``) or that only make sense
#: in-process (``cache`` is the daemon's own business).
_OPTION_FIELDS = {
    "verify": bool,
    "jobs": int,
    "budget_seconds": float,
    "timeout_per_output": float,
    "retries": int,
    "redundancy_removal": bool,
    "literal_cleanup": bool,
    "cube_limit": int,
    "factor_method": FactorMethod,
    "polarity_strategy": PolarityStrategy,
    "controllability": ControllabilityEngine,
}


def options_from_json(doc: dict) -> dict:
    """Convert a request's ``options`` object into engine overrides.

    Raises :class:`ValueError` naming the offending field for anything
    unknown or unconvertible, so the server can answer 400 instead of
    crashing a worker.
    """
    overrides: dict = {}
    for name, raw in doc.items():
        conv = _OPTION_FIELDS.get(name)
        if conv is None:
            raise ValueError(f"unknown option {name!r}")
        try:
            overrides[name] = conv(raw)
        except (TypeError, ValueError) as exc:
            raise ValueError(f"bad value for option {name!r}: {exc}") from exc
    return overrides


class JobState(str, enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass
class Job:
    """One deduplicated unit of synthesis work."""

    id: str
    key: str
    circuit: str
    spec: CircuitSpec
    options: SynthesisOptions
    state: JobState = JobState.QUEUED
    submissions: int = 1
    #: One id shared by every log line this request produces — in the
    #: daemon, on the executor thread and inside pool workers.
    correlation_id: str = ""
    submitted_unix: float = field(default_factory=time.time)
    started_unix: float | None = None
    finished_unix: float | None = None
    result: dict | None = None
    manifest: dict | None = None
    #: The request's span tree (``GET /jobs/<id>/trace``), the full
    #: FlowTrace document of the completed run.
    trace: dict | None = None
    error: str | None = None
    done: asyncio.Event = field(default_factory=asyncio.Event)

    def summary(self) -> dict:
        """The short form (``GET /jobs`` listing)."""
        return {
            "id": self.id,
            "state": self.state.value,
            "circuit": self.circuit,
            "key": self.key,
            "correlation_id": self.correlation_id,
            "submissions": self.submissions,
            "submitted_unix": self.submitted_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
        }

    def as_dict(self) -> dict:
        """The full form (``GET /jobs/<id>``), manifest included."""
        doc = self.summary()
        doc["result"] = self.result
        doc["manifest"] = self.manifest
        doc["error"] = self.error
        return doc


class JobQueue:
    """Async job queue in front of one shared engine."""

    def __init__(self, engine: SynthesisEngine, workers: int = 1):
        self.engine = engine
        self.workers = max(1, workers)
        self.jobs: dict[str, Job] = {}
        self.synth_calls = 0  # engine invocations (dedup leaves this flat)
        self._inflight: dict[str, Job] = {}
        self._queue: asyncio.Queue[Job] = asyncio.Queue()
        self._tasks: list[asyncio.Task] = []
        self._ids = itertools.count(1)
        self._registry = get_metrics_registry()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        for n in range(self.workers):
            self._tasks.append(
                asyncio.get_running_loop().create_task(
                    self._worker(), name=f"repro-serve-worker-{n}"
                )
            )

    async def drain(self) -> None:
        """Wait for every queued/running job, then stop the workers."""
        await self._queue.join()
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()

    # -- submission --------------------------------------------------------

    def submit(self, spec: CircuitSpec,
               overrides: dict | None = None) -> tuple[Job, bool]:
        """Enqueue (or join) a request; returns ``(job, deduplicated)``.

        Must be called from the event-loop thread (the HTTP handlers
        are); all dedup bookkeeping relies on that single-threadedness.
        """
        overrides = overrides or {}
        key = self.engine.request_key(spec, **overrides)
        self._registry.counter(
            "serve.jobs.submitted", "job submissions received"
        ).inc()
        existing = self._inflight.get(key)
        if existing is not None:
            existing.submissions += 1
            self._registry.counter(
                "serve.dedup.hits", "submissions joined to in-flight jobs"
            ).inc()
            log_event("serve.job.joined", job=existing.id,
                      correlation_id=existing.correlation_id,
                      submissions=existing.submissions)
            return existing, True
        job = Job(
            id=f"job-{next(self._ids)}",
            key=key,
            circuit=spec.name,
            spec=spec,
            # Serve jobs always trace: the span tree is the request's
            # GET /jobs/<id>/trace document.  (``trace`` never changes
            # the synthesized result, so dedup keys stay valid.)
            options=self.engine.resolve(**overrides).replace(trace=True),
            correlation_id=new_correlation_id(),
        )
        self.jobs[job.id] = job
        self._inflight[key] = job
        self._queue.put_nowait(job)
        log_event("serve.job.submitted", job=job.id,
                  correlation_id=job.correlation_id,
                  circuit=job.circuit, request_key=job.key)
        self._registry.gauge(
            "serve.queue.depth", "jobs waiting or running"
        ).set(len(self._inflight))
        return job, False

    def get(self, job_id: str) -> Job | None:
        return self.jobs.get(job_id)

    def counts(self) -> dict:
        states = {state.value: 0 for state in JobState}
        for job in self.jobs.values():
            states[job.state.value] += 1
        return states

    # -- execution ---------------------------------------------------------

    def _run_job(self, job: Job):
        """Synthesize on the executor thread, request context installed.

        The context must be installed on the thread that runs the
        engine (not the event loop): the flow reads the ambient context
        there and ships it to pool workers, which is what makes every
        log line of one request carry one correlation id.
        """
        previous = install_run_context(
            RunContext(job.correlation_id, job.key)
        )
        try:
            log_event("serve.job.start", job=job.id, circuit=job.circuit)
            return self.engine.synthesize(job.spec, job.options)
        finally:
            install_run_context(previous)

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = await self._queue.get()
            job.state = JobState.RUNNING
            job.started_unix = time.time()
            try:
                self.synth_calls += 1
                result = await loop.run_in_executor(
                    None, self._run_job, job
                )
                job.result = _result_doc(result)
                job.manifest = (
                    result.manifest.as_dict()
                    if result.manifest is not None else None
                )
                job.trace = (
                    result.trace.as_dict()
                    if result.trace is not None else None
                )
                job.state = JobState.DONE
                self._registry.counter(
                    "serve.jobs.completed", "jobs finished successfully"
                ).inc()
            except Exception as exc:  # noqa: BLE001 — job isolation
                job.error = f"{type(exc).__name__}: {exc}"
                job.state = JobState.FAILED
                self._registry.counter(
                    "serve.jobs.failed", "jobs that raised"
                ).inc()
            finally:
                job.finished_unix = time.time()
                latency = job.finished_unix - job.submitted_unix
                self._registry.histogram(
                    "serve.request_seconds",
                    "submit-to-finish latency per request",
                ).observe(latency)
                self._registry.histogram(
                    "serve.queue_wait_seconds",
                    "submit-to-start wait per request",
                ).observe(job.started_unix - job.submitted_unix)
                log_event(
                    "serve.job.finished", job=job.id,
                    correlation_id=job.correlation_id,
                    state=job.state.value, seconds=round(latency, 6),
                    error=job.error,
                )
                self._inflight.pop(job.key, None)
                self._registry.gauge(
                    "serve.queue.depth", "jobs waiting or running"
                ).set(len(self._inflight))
                job.done.set()
                self._queue.task_done()


def _result_doc(result) -> dict:
    """JSON summary of a :class:`SynthesisResult`, BLIF included.

    The BLIF text is the bit-identity witness: two responses for the
    same key must carry byte-equal BLIF.
    """
    network = result.network
    return {
        "two_input_gates": result.two_input_gates,
        "literals": result.literals,
        "depth": network_delay(network).delay,
        "power_uw": estimate_power(network).microwatts,
        "seconds": result.seconds,
        "verified": bool(result.verify) if result.verify is not None else None,
        "blif": write_blif(network),
    }
