"""Job queue: dedup, priority classes, quotas, journal and leases.

Every submission is keyed by :meth:`SynthesisEngine.request_key` — the
``spec digest / options fingerprint`` identity also used by the result
cache and the run manifest.  Submitting a request whose key matches a
queued or running job does **not** enqueue a second synthesis: the
caller is attached to the existing job and gets the same result
(``Job.submissions`` counts how many callers share it).  Keys equal ⇒
results equal, so deduplication can never serve a wrong answer.

On top of the PR-6 dedup queue this adds the durability/fairness tier:

* **priority classes** — every job carries one of
  :data:`PRIORITY_CLASSES` (``high``/``normal``/``low``); the dequeue
  is a binary heap ordered by (class rank, FIFO sequence), so a batch
  client marked ``low`` can never starve interactive ``high`` traffic.
  Queue-wait latency is recorded both overall and per class
  (``serve.queue_wait_seconds{priority=...}``).
* **per-client quotas** — a :class:`~repro.serve.quota.ClientQuotas`
  token bucket is consulted *before* dedup; an empty bucket raises
  :class:`~repro.errors.QuotaExceededError`, which the HTTP layer maps
  to ``429`` + ``Retry-After``.
* **journal** — when a :class:`~repro.serve.journal.JobJournal` is
  attached, ``queued``/``running``/``done``/``failed`` transitions are
  appended before they are observable, so a SIGKILL'd daemon replays
  its unfinished backlog on the next boot.
* **leases** — when a :class:`~repro.resilience.lease.LeaseManager` is
  attached, a worker takes the per-key lease before synthesizing and
  heartbeats while running; a peer daemon wanting the same key waits
  for the lease and then (thanks to the shared disk cache) answers
  from cache instead of duplicating the work.
* **overload shedding** — with ``max_depth`` set, a submission that
  would push the queue past its high-water mark is refused with
  :class:`~repro.errors.OverloadedError` (the HTTP layer maps it to
  ``503`` + ``Retry-After``) instead of growing the backlog without
  bound.  Dedup joins and journal replays are never shed: a join costs
  no new work, and a replayed job was already admitted once.  In
  *degraded mode* (set by the :class:`~repro.serve.health.
  HealthMonitor` when disk headroom, journal writes or the cache
  breaker go bad) low-priority submissions are shed first and new jobs
  stop journaling their payload detail — no more bulk writes to a disk
  that is failing or full.

All queue state is mutated on the event-loop thread only; the actual
synthesis runs in a thread-pool executor (and, for multi-output specs,
fans out into the crash-isolated process pool via ``options.jobs``),
so the loop stays responsive while jobs run.
"""

from __future__ import annotations

import asyncio
import enum
import heapq
import itertools
import time
from dataclasses import dataclass, field

from repro.core.options import (
    ControllabilityEngine,
    FactorMethod,
    SynthesisOptions,
)
from repro.engine import SynthesisEngine
from repro.errors import OverloadedError
from repro.fprm.polarity import PolarityStrategy
from repro.network.blif import write_blif
from repro.obs.logs import log_event
from repro.obs.metrics import get_metrics_registry
from repro.obs.runctx import RunContext, install_run_context, new_correlation_id
from repro.power import estimate_power
from repro.resilience.lease import Lease, LeaseManager
from repro.serve.journal import JobJournal
from repro.serve.quota import ClientQuotas
from repro.spec import CircuitSpec
from repro.timing import network_delay

__all__ = [
    "DEFAULT_CLIENT",
    "DEFAULT_PRIORITY",
    "Job",
    "JobQueue",
    "JobState",
    "PRIORITY_CLASSES",
    "options_from_json",
]

#: Priority classes in dequeue order: lower rank runs first.
PRIORITY_CLASSES = {"high": 0, "normal": 1, "low": 2}
DEFAULT_PRIORITY = "normal"
DEFAULT_CLIENT = "default"

#: JSON-settable synthesis knobs: name -> converter.  A whitelist, not
#: ``getattr`` on the dataclass — the service must not expose knobs that
#: change the result silently (``trace``) or that only make sense
#: in-process (``cache`` is the daemon's own business).
_OPTION_FIELDS = {
    "verify": bool,
    "jobs": int,
    "budget_seconds": float,
    "timeout_per_output": float,
    "retries": int,
    "redundancy_removal": bool,
    "literal_cleanup": bool,
    "cube_limit": int,
    "factor_method": FactorMethod,
    "polarity_strategy": PolarityStrategy,
    "controllability": ControllabilityEngine,
}


def options_from_json(doc: dict) -> dict:
    """Convert a request's ``options`` object into engine overrides.

    Raises :class:`ValueError` naming the offending field for anything
    unknown or unconvertible, so the server can answer 400 instead of
    crashing a worker.
    """
    overrides: dict = {}
    for name, raw in doc.items():
        conv = _OPTION_FIELDS.get(name)
        if conv is None:
            raise ValueError(f"unknown option {name!r}")
        try:
            overrides[name] = conv(raw)
        except (TypeError, ValueError) as exc:
            raise ValueError(f"bad value for option {name!r}: {exc}") from exc
    return overrides


def validate_priority(priority: str | None) -> str:
    """Normalize a request's priority field (400 material when bad)."""
    if priority is None:
        return DEFAULT_PRIORITY
    if priority not in PRIORITY_CLASSES:
        raise ValueError(
            f"unknown priority {priority!r} "
            f"(expected one of {sorted(PRIORITY_CLASSES)})"
        )
    return priority


class JobState(str, enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass
class Job:
    """One deduplicated unit of synthesis work."""

    id: str
    key: str
    circuit: str
    spec: CircuitSpec
    options: SynthesisOptions
    state: JobState = JobState.QUEUED
    priority: str = DEFAULT_PRIORITY
    client: str = DEFAULT_CLIENT
    #: Re-enqueued from the journal after a crash (skips quota/journal).
    replayed: bool = False
    submissions: int = 1
    #: One id shared by every log line this request produces — in the
    #: daemon, on the executor thread and inside pool workers.
    correlation_id: str = ""
    submitted_unix: float = field(default_factory=time.time)
    started_unix: float | None = None
    finished_unix: float | None = None
    result: dict | None = None
    manifest: dict | None = None
    #: The request's span tree (``GET /jobs/<id>/trace``), the full
    #: FlowTrace document of the completed run.
    trace: dict | None = None
    error: str | None = None
    done: asyncio.Event = field(default_factory=asyncio.Event)

    def summary(self) -> dict:
        """The short form (``GET /jobs`` listing)."""
        return {
            "id": self.id,
            "state": self.state.value,
            "circuit": self.circuit,
            "key": self.key,
            "priority": self.priority,
            "client": self.client,
            "replayed": self.replayed,
            "correlation_id": self.correlation_id,
            "submissions": self.submissions,
            "submitted_unix": self.submitted_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
        }

    def as_dict(self) -> dict:
        """The full form (``GET /jobs/<id>``), manifest included."""
        doc = self.summary()
        doc["result"] = self.result
        doc["manifest"] = self.manifest
        doc["error"] = self.error
        return doc


class _PriorityQueue:
    """Heap-ordered asyncio queue: (priority rank, FIFO sequence).

    A small stand-in for :class:`asyncio.Queue` with the same
    ``put_nowait``/``get``/``task_done``/``join`` surface; all calls
    happen on the event-loop thread.
    """

    def __init__(self):
        self._heap: list[tuple[int, int, Job]] = []
        self._seq = itertools.count()
        self._available = asyncio.Semaphore(0)
        self._unfinished = 0
        self._idle = asyncio.Event()
        self._idle.set()

    def put_nowait(self, rank: int, job: Job) -> None:
        heapq.heappush(self._heap, (rank, next(self._seq), job))
        self._unfinished += 1
        self._idle.clear()
        self._available.release()

    async def get(self) -> Job:
        await self._available.acquire()
        return heapq.heappop(self._heap)[2]

    def task_done(self) -> None:
        self._unfinished -= 1
        if self._unfinished <= 0:
            self._idle.set()

    async def join(self) -> None:
        await self._idle.wait()


class JobQueue:
    """Async job queue in front of one shared engine."""

    def __init__(self, engine: SynthesisEngine, workers: int = 1,
                 quotas: ClientQuotas | None = None,
                 journal: JobJournal | None = None,
                 leases: LeaseManager | None = None,
                 lease_poll_seconds: float = 0.25,
                 max_depth: int | None = None):
        if max_depth is not None and max_depth <= 0:
            raise ValueError("max_depth must be positive (or None)")
        self.engine = engine
        self.workers = max(1, workers)
        self.quotas = quotas
        self.journal = journal
        self.leases = leases
        self.lease_poll_seconds = lease_poll_seconds
        self.max_depth = max_depth
        #: Active degradation reasons (set by the health monitor); empty
        #: means healthy.  Read by ``/healthz`` and the shed check.
        self.degraded_reasons: list[str] = []
        self.jobs: dict[str, Job] = {}
        self.synth_calls = 0  # engine invocations (dedup leaves this flat)
        self._inflight: dict[str, Job] = {}
        self._queue = _PriorityQueue()
        self._tasks: list[asyncio.Task] = []
        self._ids = itertools.count(1)
        self._registry = get_metrics_registry()
        self._stale_seen = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        for n in range(self.workers):
            self._tasks.append(
                asyncio.get_running_loop().create_task(
                    self._worker(), name=f"repro-serve-worker-{n}"
                )
            )

    async def drain(self) -> None:
        """Wait for every queued/running job, then stop the workers."""
        await self._queue.join()
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()

    # -- degradation and shedding ------------------------------------------

    def set_degraded(self, reasons: list[str]) -> None:
        """Enter/leave degraded mode (the health monitor calls this)."""
        self.degraded_reasons = list(reasons)
        self._registry.gauge(
            "serve.degraded", "1 while the daemon is in degraded mode"
        ).set(1 if reasons else 0)

    def _retry_after(self) -> float:
        """Back clients off proportionally to the backlog, 1–60 s."""
        return min(60.0, max(1.0, len(self._inflight) * 0.5))

    def _shed(self, priority: str) -> str | None:
        """Why this submission must be refused, or ``None`` to admit.

        Past the high-water mark everything is shed; in degraded mode
        low-priority traffic is shed first, so interactive requests keep
        flowing while batch clients absorb the squeeze.
        """
        if self.max_depth is not None \
                and len(self._inflight) >= self.max_depth:
            return "queue_full"
        if self.degraded_reasons and priority == "low":
            return "degraded"
        return None

    # -- submission --------------------------------------------------------

    def submit(self, spec: CircuitSpec, overrides: dict | None = None, *,
               priority: str = DEFAULT_PRIORITY,
               client: str = DEFAULT_CLIENT,
               pla: str | None = None,
               options_doc: dict | None = None,
               replayed: bool = False) -> tuple[Job, bool]:
        """Enqueue (or join) a request; returns ``(job, deduplicated)``.

        Must be called from the event-loop thread (the HTTP handlers
        are); all dedup bookkeeping relies on that single-threadedness.
        Raises :class:`~repro.errors.QuotaExceededError` when the
        client's token bucket is empty (checked before dedup — joining
        an in-flight job is admission too) and :class:`ValueError` for
        an unknown priority class, and :class:`~repro.errors.
        OverloadedError` when the submission is shed (queue past its
        high-water mark, or low-priority traffic in degraded mode).
        ``pla``/``options_doc`` carry the raw request payload into the
        journal so a crashed daemon can reconstruct the job on replay;
        replayed re-submissions skip the quota (the tokens were spent
        on first admission), the shed check (the work was already
        accepted — dropping it now would break the 202 promise) and
        the journal (their ``queued`` event already exists).
        """
        overrides = overrides or {}
        priority = validate_priority(priority)
        if self.quotas is not None and not replayed:
            self.quotas.admit(client)  # raises QuotaExceededError
            self._registry.counter(
                "serve.quota.allowed", "submissions that passed admission"
            ).inc()
        key = self.engine.request_key(spec, **overrides)
        self._registry.counter(
            "serve.jobs.submitted", "job submissions received"
        ).inc()
        existing = self._inflight.get(key)
        if existing is not None:
            existing.submissions += 1
            self._registry.counter(
                "serve.dedup.hits", "submissions joined to in-flight jobs"
            ).inc()
            log_event("serve.job.joined", job=existing.id,
                      correlation_id=existing.correlation_id,
                      submissions=existing.submissions)
            return existing, True
        if not replayed:
            reason = self._shed(priority)
            if reason is not None:
                retry_after = self._retry_after()
                self._registry.counter(
                    "serve.shed.total", "submissions shed by overload "
                    "or degraded-mode admission",
                ).inc()
                self._registry.counter(
                    "serve.shed.total", "submissions shed by overload "
                    "or degraded-mode admission",
                    labels={"reason": reason, "priority": priority},
                ).inc()
                log_event("serve.job.shed", request_key=key,
                          reason=reason, priority=priority, client=client,
                          depth=len(self._inflight),
                          retry_after=retry_after)
                raise OverloadedError(reason, retry_after)
        job = Job(
            id=f"job-{next(self._ids)}",
            key=key,
            circuit=spec.name,
            spec=spec,
            # Serve jobs always trace: the span tree is the request's
            # GET /jobs/<id>/trace document.  (``trace`` never changes
            # the synthesized result, so dedup keys stay valid.)
            options=self.engine.resolve(**overrides).replace(trace=True),
            priority=priority,
            client=client,
            replayed=replayed,
            correlation_id=new_correlation_id(),
        )
        if self.journal is not None and not replayed:
            if self.degraded_reasons:
                # Degraded mode: stop writing payload detail to a disk
                # that is failing or full.  The job is accepted but not
                # durable — counted, so the loss is visible.
                self._registry.counter(
                    "serve.journal.suppressed",
                    "queued events not journaled in degraded mode",
                ).inc()
            else:
                # Journal before the job becomes observable: once a
                # caller holds a 202, the work survives any crash of
                # this daemon.
                self.journal.record_queued(
                    request_key=key,
                    circuit=spec.name,
                    pla=pla if pla is not None else "",
                    options=options_doc or {},
                    priority=priority,
                    client=client,
                )
        self.jobs[job.id] = job
        self._inflight[key] = job
        self._queue.put_nowait(PRIORITY_CLASSES[priority], job)
        log_event("serve.job.submitted", job=job.id,
                  correlation_id=job.correlation_id,
                  circuit=job.circuit, request_key=job.key,
                  priority=priority, client=client, replayed=replayed)
        self._registry.gauge(
            "serve.queue.depth", "jobs waiting or running"
        ).set(len(self._inflight))
        return job, False

    def get(self, job_id: str) -> Job | None:
        return self.jobs.get(job_id)

    def depth(self) -> int:
        """Jobs currently waiting or running (the shed signal)."""
        return len(self._inflight)

    def counts(self) -> dict:
        states = {state.value: 0 for state in JobState}
        for job in self.jobs.values():
            states[job.state.value] += 1
        return states

    # -- execution ---------------------------------------------------------

    def _run_job(self, job: Job):
        """Synthesize on the executor thread, request context installed.

        The context must be installed on the thread that runs the
        engine (not the event loop): the flow reads the ambient context
        there and ships it to pool workers, which is what makes every
        log line of one request carry one correlation id.
        """
        previous = install_run_context(
            RunContext(job.correlation_id, job.key)
        )
        try:
            log_event("serve.job.start", job=job.id, circuit=job.circuit)
            return self.engine.synthesize(job.spec, job.options)
        finally:
            install_run_context(previous)

    async def _acquire_lease(self, job: Job) -> Lease | None:
        """Take the per-key lease, waiting out a live peer if needed."""
        assert self.leases is not None
        lease = self.leases.try_acquire(job.key)
        if lease is None:
            self._registry.counter(
                "serve.lease.waits",
                "jobs that waited for a peer daemon's lease",
            ).inc()
            log_event("serve.lease.wait", job=job.id, request_key=job.key)
            while lease is None:
                await asyncio.sleep(self.lease_poll_seconds)
                lease = self.leases.try_acquire(job.key)
        self._registry.counter(
            "serve.lease.acquired", "per-key leases taken before running"
        ).inc()
        self._registry.counter(
            "serve.lease.stale_takeovers",
            "stale leases taken over from crashed holders",
        ).inc(self.leases.stale_takeovers - self._stale_seen)
        self._stale_seen = self.leases.stale_takeovers
        return lease

    async def _heartbeat(self, lease: Lease) -> None:
        """Refresh the lease stamp while the job runs (cancelled after)."""
        assert self.leases is not None
        interval = max(0.05, self.leases.ttl_seconds / 3.0)
        while True:
            await asyncio.sleep(interval)
            if not self.leases.heartbeat(lease):
                log_event("serve.lease.lost", request_key=lease.key)
                return

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = await self._queue.get()
            lease = None
            heartbeat: asyncio.Task | None = None
            if self.leases is not None:
                lease = await self._acquire_lease(job)
                heartbeat = loop.create_task(self._heartbeat(lease))
            job.state = JobState.RUNNING
            job.started_unix = time.time()
            if self.journal is not None:
                self.journal.record_event("running", job.key)
            try:
                self.synth_calls += 1
                result = await loop.run_in_executor(
                    None, self._run_job, job
                )
                job.result = _result_doc(result)
                job.manifest = (
                    result.manifest.as_dict()
                    if result.manifest is not None else None
                )
                job.trace = (
                    result.trace.as_dict()
                    if result.trace is not None else None
                )
                job.state = JobState.DONE
                if self.journal is not None:
                    self.journal.record_event("done", job.key)
                self._registry.counter(
                    "serve.jobs.completed", "jobs finished successfully"
                ).inc()
            except Exception as exc:  # noqa: BLE001 — job isolation
                job.error = f"{type(exc).__name__}: {exc}"
                job.state = JobState.FAILED
                if self.journal is not None:
                    self.journal.record_event("failed", job.key,
                                              error=job.error)
                self._registry.counter(
                    "serve.jobs.failed", "jobs that raised"
                ).inc()
            finally:
                if heartbeat is not None:
                    heartbeat.cancel()
                if lease is not None and self.leases is not None:
                    self.leases.release(lease)
                job.finished_unix = time.time()
                latency = job.finished_unix - job.submitted_unix
                queue_wait = job.started_unix - job.submitted_unix
                self._registry.histogram(
                    "serve.request_seconds",
                    "submit-to-finish latency per request",
                ).observe(latency)
                self._registry.histogram(
                    "serve.queue_wait_seconds",
                    "submit-to-start wait per request",
                ).observe(queue_wait)
                self._registry.histogram(
                    "serve.queue_wait_seconds",
                    "submit-to-start wait per request",
                    labels={"priority": job.priority},
                ).observe(queue_wait)
                log_event(
                    "serve.job.finished", job=job.id,
                    correlation_id=job.correlation_id,
                    state=job.state.value, seconds=round(latency, 6),
                    error=job.error,
                )
                self._inflight.pop(job.key, None)
                self._registry.gauge(
                    "serve.queue.depth", "jobs waiting or running"
                ).set(len(self._inflight))
                job.done.set()
                self._queue.task_done()


def _result_doc(result) -> dict:
    """JSON summary of a :class:`SynthesisResult`, BLIF included.

    The BLIF text is the bit-identity witness: two responses for the
    same key must carry byte-equal BLIF.
    """
    network = result.network
    return {
        "two_input_gates": result.two_input_gates,
        "literals": result.literals,
        "depth": network_delay(network).delay,
        "power_uw": estimate_power(network).microwatts,
        "seconds": result.seconds,
        "verified": bool(result.verify) if result.verify is not None else None,
        "cached_outputs": result.cached_outputs,
        "blif": write_blif(network),
    }
