"""Per-client admission control: token-bucket quotas for repro-serve.

A synthesis request is orders of magnitude more expensive than the
HTTP round trip that carries it, so the daemon meters *admission*, not
bandwidth: each client id owns a token bucket refilled at ``rate``
tokens per second up to ``burst``.  A submission takes one token; an
empty bucket means the request is rejected up front with a ``429`` and
a ``Retry-After`` telling the client exactly when a token will exist —
cheap backpressure instead of a queue that silently starves the
interactive traffic behind a batch client.

Quotas are per *client id* (the optional ``client`` field of the
request body, ``"default"`` when absent), deliberately cooperative:
this is a fairness mechanism between known workloads sharing a daemon,
not an authentication boundary.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass

from repro.errors import QuotaExceededError

__all__ = ["ClientQuotas", "QuotaDecision", "TokenBucket"]


@dataclass
class QuotaDecision:
    """The outcome of one admission check."""

    allowed: bool
    #: Whole seconds until a token will be available (0 when allowed).
    retry_after: float = 0.0


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, capacity ``burst``."""

    def __init__(self, rate: float, burst: float, clock=time.monotonic):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be at least one token")
        self.rate = rate
        self.burst = burst
        self.clock = clock
        self.tokens = float(burst)
        self.updated = clock()

    def _refill(self) -> None:
        now = self.clock()
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now

    def take(self, tokens: float = 1.0) -> QuotaDecision:
        """Spend ``tokens`` if available, else say when they would be."""
        self._refill()
        if self.tokens >= tokens:
            self.tokens -= tokens
            return QuotaDecision(allowed=True)
        deficit = tokens - self.tokens
        return QuotaDecision(
            allowed=False,
            retry_after=max(1.0, math.ceil(deficit / self.rate)),
        )


class ClientQuotas:
    """Lazily-created per-client buckets; ``rate=None`` disables quotas.

    Thread-safe: admission may be checked from HTTP handler context
    while tests poke at it directly.
    """

    def __init__(self, rate: float | None = None, burst: float = 10.0,
                 clock=time.monotonic):
        self.rate = rate
        self.burst = burst
        self.clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.rate is not None

    def bucket(self, client: str) -> TokenBucket | None:
        if self.rate is None:
            return None
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, clock=self.clock)
                self._buckets[client] = bucket
            return bucket

    def admit(self, client: str) -> QuotaDecision:
        """Check-and-spend; raises :class:`QuotaExceededError` on reject."""
        bucket = self.bucket(client)
        if bucket is None:
            return QuotaDecision(allowed=True)
        decision = bucket.take()
        if not decision.allowed:
            raise QuotaExceededError(client, decision.retry_after)
        return decision
