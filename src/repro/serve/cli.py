"""repro-serve — run the synthesis service from the command line.

    repro-serve [--host H] [--port P] [--cache-dir DIR] [--state-dir DIR]
                [--cache-max-mb N] [--workers N] [--jobs N] [--no-verify]
                [--quota-rate R] [--quota-burst B] [--lease-ttl S]
                [--journal-max-bytes N] [--journal-keep-segments N]
                [--max-queue-depth N] [--min-free-mb N]

``--cache-dir`` (or ``REPRO_CACHE_DIR``) attaches the disk-backed
result cache, so results survive daemon restarts and are shared with
``repro-synth``/harness runs pointed at the same directory.
``--state-dir`` (or ``REPRO_SERVE_STATE_DIR``) makes the *queue*
durable too: accepted jobs are journaled and replayed after a crash,
and lease files under the same directory coordinate several daemons
sharing one cache.  ``--quota-rate``/``--quota-burst`` turn on
per-client token-bucket admission (429 + ``Retry-After`` when a bucket
runs dry).  ``--jobs`` sets how many pool processes one multi-output
job may fan out to; ``--workers`` sets how many jobs run concurrently.
``--journal-max-bytes``/``--journal-keep-segments`` bound the journal's
disk footprint via rotation and checksummed compaction (inspect with
``python -m repro.serve.journalctl``); ``--max-queue-depth`` sheds
submissions with 503 + ``Retry-After`` past the high-water mark, and
``--min-free-mb`` flips the daemon to degraded mode before the state
disk actually fills.  The daemon drains gracefully on SIGTERM/SIGINT
and exits 0.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys

from repro.engine import EngineConfig, resolve_cache_dir, resolve_options
from repro.flow.disk_cache import DEFAULT_MAX_BYTES
from repro.obs.logs import LOG_FILE_ENV, configure, log_event, logging_enabled
from repro.resilience.lease import DEFAULT_TTL_SECONDS
from repro.serve.journal import DEFAULT_KEEP_SEGMENTS
from repro.serve.server import ReproServer, resolve_state_dir


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="FPRM synthesis service (asyncio, stdlib only)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8348,
                        help="TCP port (0 = let the OS pick)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="disk-backed result cache shared across "
                             "processes (default: REPRO_CACHE_DIR)")
    parser.add_argument("--state-dir", default=None, metavar="DIR",
                        help="durable queue state: job journal + lease "
                             "files (default: REPRO_SERVE_STATE_DIR; "
                             "unset = in-memory queue)")
    parser.add_argument("--quota-rate", type=float, default=None,
                        metavar="R", help="per-client admission rate in "
                             "requests/second (unset = no quotas)")
    parser.add_argument("--quota-burst", type=float, default=10.0,
                        metavar="B", help="per-client token-bucket "
                             "capacity (default 10)")
    parser.add_argument("--lease-ttl", type=float,
                        default=DEFAULT_TTL_SECONDS, metavar="S",
                        help="seconds without a heartbeat before a "
                             "peer's lease is stale (default "
                             f"{DEFAULT_TTL_SECONDS:g})")
    parser.add_argument("--journal-max-bytes", type=int, default=None,
                        metavar="N",
                        help="rotate the job journal when its tail "
                             "crosses N bytes; compaction folds old "
                             "segments into a checksummed checkpoint "
                             "(unset = single unbounded file)")
    parser.add_argument("--journal-keep-segments", type=int,
                        default=DEFAULT_KEEP_SEGMENTS, metavar="N",
                        help="sealed journal segments kept before "
                             "compaction folds the oldest into the "
                             f"checkpoint (default {DEFAULT_KEEP_SEGMENTS})")
    parser.add_argument("--max-queue-depth", type=int, default=None,
                        metavar="N",
                        help="shed submissions with 503 + Retry-After "
                             "once N jobs are waiting or running "
                             "(unset = unbounded queue)")
    parser.add_argument("--min-free-mb", type=int, default=None,
                        metavar="N",
                        help="flip to degraded mode (shed low priority, "
                             "stop journaling detail) when the state "
                             "dir's filesystem has less than N MiB free")
    parser.add_argument("--cache-max-mb", type=int,
                        default=DEFAULT_MAX_BYTES // (1024 * 1024),
                        metavar="N", help="disk cache size budget for GC")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="concurrent jobs (default 1)")
    parser.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="pool processes per multi-output job "
                             "(0 = all cores, the default)")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip equivalence checking per job")
    parser.add_argument("--no-kernels", action="store_true",
                        help="scalar cube-algebra loops instead of the "
                             "vectorized kernels (bit-identical results)")
    parser.add_argument("--log-file", default=None, metavar="FILE",
                        help="structured JSON log sink shared with pool "
                             f"workers (default: {LOG_FILE_ENV}; "
                             "'-' = stderr, daemon lines only)")
    parser.add_argument("--history", default=None, metavar="FILE",
                        help="run-history JSONL to append per-request "
                             "records to (default: REPRO_HISTORY_FILE)")
    args = parser.parse_args(argv)

    # A file sink travels into forked pool workers via the env var, so
    # one request's lines — daemon and workers — share a correlation id.
    if args.log_file == "-":
        configure(sys.stderr)
    elif args.log_file is not None:
        os.environ[LOG_FILE_ENV] = args.log_file

    config = EngineConfig(
        options=resolve_options(
            verify=not args.no_verify,
            cache=True,
            jobs=args.jobs,
            use_kernels=False if args.no_kernels else None,
        ),
        cache_dir=resolve_cache_dir(args.cache_dir),
        cache_max_bytes=args.cache_max_mb * 1024 * 1024,
        history_path=args.history,
    )
    state_dir = resolve_state_dir(args.state_dir)
    server = ReproServer(config, host=args.host, port=args.port,
                         workers=args.workers,
                         state_dir=state_dir,
                         quota_rate=args.quota_rate,
                         quota_burst=args.quota_burst,
                         lease_ttl_seconds=args.lease_ttl,
                         journal_max_bytes=args.journal_max_bytes,
                         journal_keep_segments=args.journal_keep_segments,
                         max_queue_depth=args.max_queue_depth,
                         min_free_mb=args.min_free_mb)

    async def run() -> None:
        await server.start()
        print(f"repro-serve listening on http://{server.host}:{server.port}"
              + (f" (cache: {config.cache_dir})" if config.cache_dir else "")
              + (f" (state: {state_dir}, replayed {server.replayed})"
                 if state_dir else ""),
              file=sys.stderr, flush=True)
        if logging_enabled():
            log_event("serve.started", host=server.host, port=server.port,
                      workers=args.workers, state_dir=state_dir,
                      replayed=server.replayed)
        await server.serve_forever(install_signals=True)

    asyncio.run(run())
    if logging_enabled():
        log_event("serve.stopped")
    print("repro-serve: drained, bye", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
