"""Health-based admission: the daemon's own resource watchdog.

Overload shedding (:mod:`repro.serve.jobs`) protects the queue from
*traffic*; this monitor protects it from the *machine*.  A background
task samples three signals every couple of seconds:

1. **disk headroom** — free bytes on the state directory's filesystem
   (via :func:`shutil.disk_usage`, injectable for tests) against the
   configured floor;
2. **journal write errors** — fresh append/rotation failures since the
   last sample (an ``ENOSPC`` journal means accepted work is no longer
   durable);
3. **disk-cache breaker** — the write breaker of the engine's disk
   tier sitting open means results are not being persisted.

Any firing signal flips the queue into *degraded mode*: low-priority
submissions are shed with 503 + ``Retry-After`` (interactive traffic
keeps flowing), new submissions stop journaling their payload detail
(nothing more is written to a disk that is failing or full), and
``GET /healthz`` reports ``"status": "degraded"`` with the reasons so
an operator — or a load balancer — can see *why* before the disk
actually runs out.  When every signal clears, the next sample lifts
degraded mode; recovery needs no restart.

The ``serve.degraded`` gauge (0/1) and per-reason
``serve.degraded.reasons`` counters make the transitions visible in
``/metrics`` history.
"""

from __future__ import annotations

import asyncio
import shutil

from repro.obs.logs import log_event
from repro.obs.metrics import get_metrics_registry
from repro.resilience.breaker import CircuitBreaker
from repro.serve.jobs import JobQueue

__all__ = ["DEFAULT_INTERVAL_SECONDS", "HealthMonitor"]

DEFAULT_INTERVAL_SECONDS = 2.0


class HealthMonitor:
    """Samples resource signals and drives the queue's degraded mode."""

    def __init__(self, queue: JobQueue, *,
                 state_dir: str | None = None,
                 min_free_bytes: int | None = None,
                 breaker: CircuitBreaker | None = None,
                 interval_seconds: float = DEFAULT_INTERVAL_SECONDS,
                 disk_usage=shutil.disk_usage):
        self.queue = queue
        self.state_dir = state_dir
        self.min_free_bytes = min_free_bytes
        self.breaker = breaker
        self.interval_seconds = interval_seconds
        self.disk_usage = disk_usage
        self.checks = 0
        self._journal_errors_seen = (
            queue.journal.write_errors if queue.journal is not None else 0
        )
        self._task: asyncio.Task | None = None
        self._last_reasons: tuple[str, ...] = ()

    # -- one sample --------------------------------------------------------

    def check(self) -> list[str]:
        """Sample every signal once; returns the active reasons."""
        self.checks += 1
        reasons: list[str] = []
        reasons.extend(self._check_disk_headroom())
        reasons.extend(self._check_journal())
        reasons.extend(self._check_breaker())
        if tuple(reasons) != self._last_reasons:
            registry = get_metrics_registry()
            for reason in reasons:
                if reason not in self._last_reasons:
                    registry.counter(
                        "serve.degraded.reasons",
                        "times a degradation reason became active",
                        labels={"reason": reason.split(":", 1)[0]},
                    ).inc()
            log_event("serve.health.transition",
                      reasons=reasons, previous=list(self._last_reasons))
            self._last_reasons = tuple(reasons)
        self.queue.set_degraded(reasons)
        return reasons

    def _check_disk_headroom(self) -> list[str]:
        if self.state_dir is None or not self.min_free_bytes:
            return []
        try:
            free = self.disk_usage(self.state_dir).free
        except OSError:
            # The state dir vanished: that *is* a degradation, and it is
            # worse than low headroom.
            return ["state-dir-missing"]
        if free < self.min_free_bytes:
            return [f"low-disk:{free // (1024 * 1024)}mb-free"]
        return []

    def _check_journal(self) -> list[str]:
        journal = self.queue.journal
        if journal is None:
            return []
        fresh = journal.write_errors - self._journal_errors_seen
        self._journal_errors_seen = journal.write_errors
        if fresh > 0:
            return ["journal-write-errors"]
        # No new failures since the last sample: appends either succeed
        # again or are not happening — lift the flag optimistically; the
        # next failed append re-raises it within one interval.
        return []

    def _check_breaker(self) -> list[str]:
        if self.breaker is None:
            return []
        if self.breaker.state == CircuitBreaker.OPEN:
            return ["cache-breaker-open"]
        return []

    # -- background task ---------------------------------------------------

    def start(self) -> None:
        self._task = asyncio.get_running_loop().create_task(
            self._run(), name="repro-serve-health")

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    async def _run(self) -> None:
        while True:
            self.check()
            await asyncio.sleep(self.interval_seconds)
