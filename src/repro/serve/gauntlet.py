"""Crash-restart gauntlet: what the CI ``service-smoke`` job escalates to.

    python -m repro.serve.gauntlet [--circuits NAMES] [--phases ABC]

Three phases, all against real ``repro-serve`` subprocesses:

**Phase A — SIGKILL mid-queue.**  Boot one durable daemon
(``--state-dir``), submit a batch of small circuits without waiting,
and SIGKILL the process while most of them are still queued.  Restart
a daemon on the same journal/cache directories and assert that

1. the boot replayed the unfinished backlog
   (``serve_journal_replayed`` > 0 and ``/healthz`` agrees);
2. every submitted circuit reaches ``done`` without being resubmitted;
3. each BLIF is byte-equal to an in-process reference synthesis —
   the crash changed *when* the answers arrived, not *what* they are.

**Phase B — two daemons, one cache.**  Boot two daemons sharing one
cache/state directory, submit the *same* fresh circuit to both, and
assert the results are bit-identical while the combined
``engine_requests_fresh`` across both daemons is exactly 1: the lease
files made one daemon do the work and the other answer from the
shared cache (``serve_lease_acquired`` confirms the leases were used).

**Phase C — disk faults + rotation under SIGKILL.**  Boot a daemon
with a tiny ``--journal-max-bytes`` (rotation fires constantly) and a
:mod:`repro.resilience.faultfs` plan injected via ``REPRO_FAULTFS``:
disk-cache entry writes hit ``ENOSPC`` until the write breaker trips,
one journal append is torn mid-write, and one rotation rename fails
with ``EIO``.  Assert that every job still completes with BLIF
byte-equal to the reference (disk-cache writes degraded to memory-only
behind the breaker), that the breaker opened and then closed again
after the half-open re-probe found the disk healthy, and that the
journal rotated.  Then SIGKILL the daemon mid-traffic, restart it
clean, assert the backlog completes bit-identically, and finish with
``journalctl verify`` — the journal must be sound (no corruption, no
half-rotated state) after all of it.

Exits non-zero with a message on the first violated assertion.
"""

from __future__ import annotations

import argparse
import os
import re
import signal
import subprocess
import sys
import tempfile
import time

from repro.circuits import get
from repro.engine import EngineConfig, SynthesisEngine, resolve_options
from repro.expr.pla import pla_from_spec, write_pla
from repro.network.blif import write_blif
from repro.serve.client import ServeClient

_PORT_RE = re.compile(r"127\.0\.0\.1:(\d+)")

#: Small circuits (tens of milliseconds each): enough queue to outlive
#: the SIGKILL, cheap enough for a PR-gating CI job.
DEFAULT_CIRCUITS = ("rd53", "z4ml", "radd", "adr4", "rd73")

#: Phase A retries: if the daemon finished *everything* before the
#: SIGKILL landed there is nothing to replay — re-roll the race.
MAX_CRASH_ATTEMPTS = 3


class GauntletFailure(AssertionError):
    pass


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise GauntletFailure(message)


def _start_daemon(cache_dir: str, state_dir: str,
                  lease_ttl: float = 2.0,
                  extra_args: list[str] | None = None,
                  env: dict[str, str] | None = None
                  ) -> tuple[subprocess.Popen, ServeClient]:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve.cli", "--port", "0",
         "--cache-dir", cache_dir, "--state-dir", state_dir,
         # jobs=1 keeps synthesis in-process: a SIGKILL'd daemon must
         # not leave orphaned pool workers behind in CI.
         "--jobs", "1", "--lease-ttl", str(lease_ttl)]
        + (extra_args or []),
        stderr=subprocess.PIPE, text=True, env=env,
    )
    deadline = time.monotonic() + 30
    line = ""
    while time.monotonic() < deadline:
        line = proc.stderr.readline()
        if "listening" in line:
            break
        _check(proc.poll() is None, "daemon died before listening")
    match = _PORT_RE.search(line)
    _check(match is not None, f"no port in startup line: {line!r}")
    client = ServeClient(f"http://127.0.0.1:{match.group(1)}")
    client.wait_ready()
    return proc, client


def _sigkill(proc: subprocess.Popen) -> None:
    proc.send_signal(signal.SIGKILL)
    proc.wait(timeout=30)
    proc.stderr.close()


def _stop_daemon(proc: subprocess.Popen) -> None:
    proc.send_signal(signal.SIGTERM)
    code = proc.wait(timeout=60)
    proc.stderr.close()
    _check(code == 0, f"daemon exited {code} on SIGTERM (want 0)")


def _metric(metrics: str, name: str) -> float:
    total = 0.0
    for line in metrics.splitlines():
        if line.startswith(name + " ") or line.startswith(name + "{"):
            total += float(line.split()[-1])
    return total


def _wait_all_done(client: ServeClient, circuits: list[str],
                   timeout: float = 120.0) -> dict[str, dict]:
    """Poll ``/jobs`` until every circuit has a ``done`` job; id-keyed
    lookups don't survive a restart, circuit names do."""
    deadline = time.monotonic() + timeout
    while True:
        jobs = client.jobs()["jobs"]
        done = {job["circuit"]: job for job in jobs
                if job["state"] == "done"}
        failed = [job for job in jobs if job["state"] == "failed"]
        _check(not failed, f"jobs failed after restart: {failed}")
        if all(name in done for name in circuits):
            return {name: client.job(done[name]["id"])
                    for name in circuits}
        _check(time.monotonic() < deadline,
               f"timed out; done={sorted(done)}, want={circuits}")
        time.sleep(0.1)


def _references(circuits: list[str], plas: dict[str, str]) -> dict[str, str]:
    """In-process reference BLIFs, same options the daemon resolves."""
    engine = SynthesisEngine(EngineConfig(
        options=resolve_options(verify=True, cache=True, jobs=1)
    ))
    try:
        return {
            name: write_blif(engine.synthesize(get(name)).network)
            for name in circuits
        }
    finally:
        engine.close()


def phase_a_crash_restart(circuits: list[str],
                          plas: dict[str, str],
                          references: dict[str, str]) -> None:
    for attempt in range(1, MAX_CRASH_ATTEMPTS + 1):
        with tempfile.TemporaryDirectory(
                prefix="repro-gauntlet-a-") as tmp:
            cache_dir = os.path.join(tmp, "cache")
            state_dir = os.path.join(tmp, "state")
            print(f"gauntlet A: boot + enqueue (attempt {attempt}) ...",
                  flush=True)
            proc, client = _start_daemon(cache_dir, state_dir)
            accepted = []
            for name in circuits:
                doc = client.synthesize(plas[name], name=name, wait=False,
                                        priority="low")
                _check(doc["state"] == "queued" or doc["state"] == "running",
                       f"unexpected 202 state {doc['state']!r}")
                accepted.append(doc["key"])
            # No drain, no warning: the daemon dies with the queue full.
            _sigkill(proc)
            print("gauntlet A: SIGKILL delivered, restarting ...",
                  flush=True)

            proc, client = _start_daemon(cache_dir, state_dir)
            try:
                replayed = client.health()["replayed"]
                if replayed == 0 and attempt < MAX_CRASH_ATTEMPTS:
                    # Everything finished before the kill landed; the
                    # premise (crash mid-queue) didn't hold — re-roll.
                    print("gauntlet A: nothing to replay, re-rolling",
                          flush=True)
                    _stop_daemon(proc)
                    continue
                _check(replayed > 0,
                       "restart found nothing to replay in the journal")
                # Jobs finished before the kill are terminal in the
                # journal and stay finished (their results sit in the
                # shared cache); only the unfinished backlog reappears.
                pending = sorted({job["circuit"]
                                  for job in client.jobs()["jobs"]})
                _check(len(pending) == replayed,
                       f"{replayed} replayed but {len(pending)} queued")
                jobs = _wait_all_done(client, pending)
                for name in pending:
                    job = jobs[name]
                    _check(job["replayed"] is True,
                           f"{name} was not marked as a replayed job")
                    _check(job["key"] in accepted,
                           f"{name} replayed under a different key")
                    _check(job["result"]["blif"] == references[name],
                           f"{name}: replayed BLIF differs from reference")
                metrics = client.metrics()
                _check(_metric(metrics, "serve_journal_replayed") > 0,
                       "serve_journal_replayed metric is zero")
                print(f"gauntlet A: {replayed} jobs replayed, all "
                      "bit-identical to references", flush=True)
            finally:
                _stop_daemon(proc)
            return
    raise GauntletFailure("phase A never caught the daemon mid-queue")


def phase_b_two_daemons(circuit: str, plas: dict[str, str],
                        references: dict[str, str]) -> None:
    with tempfile.TemporaryDirectory(prefix="repro-gauntlet-b-") as tmp:
        cache_dir = os.path.join(tmp, "cache")
        state_dir = os.path.join(tmp, "state")
        print("gauntlet B: booting two daemons on one cache ...",
              flush=True)
        proc_a, client_a = _start_daemon(cache_dir, state_dir)
        proc_b, client_b = _start_daemon(cache_dir, state_dir)
        try:
            # Submit the same key to both daemons before either can
            # finish: the lease decides who synthesizes.
            sub_a = client_a.synthesize(plas[circuit], name=circuit,
                                        wait=False)
            sub_b = client_b.synthesize(plas[circuit], name=circuit,
                                        wait=False)
            _check(sub_a["key"] == sub_b["key"],
                   "same request hashed to different keys")
            job_a = client_a.wait_job(sub_a["id"])
            job_b = client_b.wait_job(sub_b["id"])
            for side, job in (("A", job_a), ("B", job_b)):
                _check(job["state"] == "done",
                       f"daemon {side} job {job['state']}: "
                       f"{job.get('error')}")
                _check(job["result"]["blif"] == references[circuit],
                       f"daemon {side} BLIF differs from reference")
            metrics_a = client_a.metrics()
            metrics_b = client_b.metrics()
            fresh = (_metric(metrics_a, "engine_requests_fresh")
                     + _metric(metrics_b, "engine_requests_fresh"))
            _check(fresh == 1.0,
                   f"expected exactly one fresh synthesis across both "
                   f"daemons, saw {fresh:g}")
            leases = (_metric(metrics_a, "serve_lease_acquired")
                      + _metric(metrics_b, "serve_lease_acquired"))
            _check(leases >= 2.0,
                   f"expected both daemons to take the lease, saw "
                   f"{leases:g}")
            print("gauntlet B: one synthesis, two bit-identical answers, "
                  f"{leases:g} lease acquisitions", flush=True)
        finally:
            _stop_daemon(proc_a)
            _stop_daemon(proc_b)


def phase_c_disk_faults(circuits: list[str], plas: dict[str, str],
                        references: dict[str, str]) -> None:
    with tempfile.TemporaryDirectory(prefix="repro-gauntlet-c-") as tmp:
        cache_dir = os.path.join(tmp, "cache")
        state_dir = os.path.join(tmp, "state")
        batch, probe = circuits[:-1], circuits[-1]
        env = dict(os.environ)
        # Three deterministic disk faults: entry writes hit ENOSPC until
        # the breaker trips (threshold 3), one journal append is torn,
        # one rotation rename fails with EIO.  A short breaker cooldown
        # lets the half-open re-probe happen within the phase.
        env["REPRO_FAULTFS"] = (
            "write:enospc:path=entries:count=3;"
            "write:partial:path=journal.jsonl:after=4:count=1;"
            "replace:eio:path=.0001.jsonl:count=1"
        )
        env["REPRO_CACHE_BREAKER_COOLDOWN"] = "0.05"
        rotation = ["--journal-max-bytes", "600",
                    "--journal-keep-segments", "2"]
        print("gauntlet C: booting under injected disk faults ...",
              flush=True)
        proc, client = _start_daemon(cache_dir, state_dir,
                                     extra_args=rotation, env=env)
        accepted = []
        try:
            for name in batch:
                job = client.synthesize(plas[name], name=name, wait=True)
                _check(job["state"] == "done",
                       f"{name} {job['state']} under disk faults: "
                       f"{job.get('error')}")
                _check(job["result"]["blif"] == references[name],
                       f"{name}: BLIF under disk faults differs from "
                       "reference")
            metrics = client.metrics()
            _check(_metric(metrics, "faultfs_injected") > 0,
                   "no injected fault ever fired")
            _check(_metric(metrics, "cache_disk_errors") >= 1,
                   "disk-cache writes never saw the injected ENOSPC")
            _check(_metric(metrics, "cache_disk_breaker_opened") >= 1,
                   "the disk-cache write breaker never opened")
            _check(_metric(metrics, "journal_rotations") >= 1,
                   "the journal never rotated")
            # The ENOSPC rule is exhausted: after the cooldown the
            # half-open probe on the next store must find the disk
            # healthy and close the breaker.
            time.sleep(0.2)
            job = client.synthesize(plas[probe], name=probe, wait=True)
            _check(job["state"] == "done", f"probe circuit {probe} failed")
            _check(job["result"]["blif"] == references[probe],
                   f"{probe}: probe BLIF differs from reference")
            metrics = client.metrics()
            _check(_metric(metrics, "cache_disk_breaker") == 0.0,
                   "breaker did not close after the disk recovered")
            print("gauntlet C: breaker tripped and recovered, results "
                  "bit-identical", flush=True)
            # Re-submit the batch without waiting and SIGKILL while the
            # journal is busy appending/rotating.
            for name in batch:
                doc = client.synthesize(plas[name], name=name, wait=False)
                accepted.append(doc["key"])
        finally:
            _sigkill(proc)
        print("gauntlet C: SIGKILL mid-rotation, restarting clean ...",
              flush=True)

        proc, client = _start_daemon(cache_dir, state_dir,
                                     extra_args=rotation)
        try:
            jobs = _wait_all_done(
                client, sorted({job["circuit"]
                                for job in client.jobs()["jobs"]}))
            for name, job in jobs.items():
                _check(job["result"]["blif"] == references[name],
                       f"{name}: post-crash BLIF differs from reference")
        finally:
            _stop_daemon(proc)

        verify = subprocess.run(
            [sys.executable, "-m", "repro.serve.journalctl", "verify",
             "--state-dir", state_dir],
            capture_output=True, text=True,
        )
        _check(verify.returncode == 0,
               "journalctl verify found corruption after the crash: "
               f"{verify.stdout}{verify.stderr}")
        print("gauntlet C: journal verified sound after faults + SIGKILL",
              flush=True)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--circuits", default=",".join(DEFAULT_CIRCUITS),
                        metavar="NAMES",
                        help="comma-separated circuit names (first N-1 "
                             "feed phase A, the last feeds phase B)")
    parser.add_argument("--phases", default="ABC", metavar="LETTERS",
                        help="which phases to run (default ABC)")
    args = parser.parse_args(argv)

    phases = {letter for letter in args.phases.upper() if letter.strip()}
    unknown = phases - {"A", "B", "C"}
    _check(not unknown, f"unknown phases: {sorted(unknown)}")
    circuits = [name.strip() for name in args.circuits.split(",")
                if name.strip()]
    _check(len(circuits) >= 2, "need at least two circuits")
    plas = {name: write_pla(pla_from_spec(get(name))) for name in circuits}
    print("gauntlet: computing in-process references ...", flush=True)
    references = _references(circuits, plas)

    if "A" in phases:
        phase_a_crash_restart(circuits[:-1], plas, references)
    if "B" in phases:
        phase_b_two_daemons(circuits[-1], plas, references)
    if "C" in phases:
        phase_c_disk_faults(circuits, plas, references)
    print("gauntlet: OK", flush=True)
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except GauntletFailure as exc:
        print(f"gauntlet: FAIL: {exc}", file=sys.stderr)
        raise SystemExit(1) from exc
