"""Durable job journal: a segmented, compactable JSONL write-ahead log.

The in-memory :class:`~repro.serve.jobs.JobQueue` is fast but mortal —
before this journal existed, a daemon restart dropped every queued
request.  The journal makes the queue durable with the same discipline
the run-history store uses (single ``O_APPEND`` writes of whole lines,
torn-tail healing, torn lines skipped on read): every state transition
of a job is one appended event, keyed by the engine's ``request_key``.

Event lifecycle per key::

    queued  ->  running  ->  done | failed

A ``queued`` event carries everything needed to *reconstruct* the job
(the PLA text, the circuit name, the raw JSON options overrides, the
priority class and client id); the later transitions are skeletal.  On
boot, :meth:`JobJournal.replay` folds the log per key: any key whose
*last* event is ``queued`` or ``running`` is unfinished business — the
daemon that accepted it crashed before finishing — and is re-enqueued.
Because results are content-addressed (same key ⇒ same answer) and the
disk cache is shared, a replayed job that a peer already finished costs
one cache lookup, and a replayed job nobody finished synthesizes
bit-identically to what the dead daemon would have produced.

Rotation and compaction (new in the resource-exhaustion hardening)
==================================================================

An append-only log grows forever; a long-lived daemon must not fill its
disk with ``done`` events for jobs nobody will ever replay.  With
``max_bytes`` set, the journal is *segmented*:

``journal.jsonl``
    The active tail — always the append target, so tools (and the
    service smoke) that read the legacy single-file path keep working.
``journal.0001.jsonl`` …
    Sealed segments: when the tail crosses ``max_bytes`` it is atomically
    renamed to the next segment number and appends continue into a fresh
    tail.  Sealed segments are never appended to again.
``journal.checkpoint.jsonl``
    The compacted prefix.  When more than ``keep_segments`` sealed
    segments exist, the oldest are *folded* into the checkpoint: keys
    whose last event is ``done`` are dropped (counted in the cumulative
    ``retired`` header field), ``failed`` keys keep a skeletal failed
    record with their error (post-mortems survive compaction), and
    unfinished keys keep their full ``queued`` payload so replay can
    still reconstruct them.  Records with a *newer* schema than this
    code understands are preserved verbatim — an old compactor must
    never destroy a new daemon's records.  The checkpoint is written
    atomically (temp + fsync + rename through :mod:`repro.resilience.
    faultfs`) with a header line carrying the SHA-256 of the body, so a
    torn or bit-rotted checkpoint is *detected* on replay rather than
    silently mis-folded.

Replay reads checkpoint → sealed segments (ascending) → active tail.
A crash between "checkpoint written" and "old segments unlinked" leaves
both on disk; folding the same records twice is harmless because the
fold is last-event-per-key.  A crash between "tail renamed" and "first
append to the new tail" leaves no tail file; the next append recreates
it.  There is no crash point that loses an acknowledged event.

Several daemons may share one journal directory: appends interleave
whole lines, replay is idempotent (re-enqueueing a finished key ends at
the cache), and the lease files (:mod:`repro.resilience.lease`) keep
two daemons from synthesizing one key concurrently.  Rotation in that
topology is racy (two daemons can seal the tail to the same segment
number) and is therefore meant for single-writer state dirs; the
consequence of the race is duplicate folding, not corruption.

Write faults (``ENOSPC``, a vanished state dir) are *absorbed*, not
raised: the daemon keeps serving, ``write_errors``/``last_write_error``
record the loss of durability, and the health monitor reports the
degradation.  ``python -m repro.serve.journalctl`` inspects, compacts
and verifies all of the above from the command line.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import threading
import time
from dataclasses import dataclass, field

from repro.obs.history.store import append_jsonl, read_jsonl
from repro.resilience import faultfs

__all__ = [
    "JOURNAL_SCHEMA_VERSION",
    "JobJournal",
    "PendingJob",
    "ReplayReport",
]

JOURNAL_SCHEMA_VERSION = 1

#: Events that end a key's lifecycle.
_TERMINAL = ("done", "failed")
_EVENTS = ("queued", "running") + _TERMINAL

#: Default sealed segments kept un-compacted for inspection.
DEFAULT_KEEP_SEGMENTS = 4


@dataclass
class PendingJob:
    """One unfinished job reconstructed from the journal."""

    request_key: str
    circuit: str
    pla: str
    options: dict
    priority: str
    client: str
    submitted_unix: float


@dataclass
class ReplayReport:
    """What :meth:`JobJournal.replay` saw (metrics feed off this)."""

    pending: list[PendingJob] = field(default_factory=list)
    finished: int = 0
    #: Records skipped for an unknown (newer) schema version.
    skipped_schema: int = 0
    #: Records skipped as malformed (missing event/key, bad payload).
    skipped_malformed: int = 0
    #: The compaction checkpoint failed its checksum (body still folded
    #: best-effort; ``journalctl verify`` exits non-zero on this).
    checkpoint_corrupt: bool = False


@dataclass
class _Fold:
    """Per-key folding state shared by replay and compaction."""

    last_event: dict[str, str] = field(default_factory=dict)
    last_error: dict[str, str | None] = field(default_factory=dict)
    last_ts: dict[str, float] = field(default_factory=dict)
    payloads: dict[str, PendingJob] = field(default_factory=dict)
    raw_queued: dict[str, dict] = field(default_factory=dict)
    order: list[str] = field(default_factory=list)
    foreign: list[dict] = field(default_factory=list)
    skipped_schema: int = 0
    skipped_malformed: int = 0

    def feed(self, record: dict) -> None:
        schema = record.get("schema")
        if not isinstance(schema, int) or schema > JOURNAL_SCHEMA_VERSION:
            # Preserved, not destroyed: a newer daemon's records survive
            # an older daemon's compaction verbatim.
            self.skipped_schema += 1
            self.foreign.append(record)
            return
        event = record.get("event")
        key = record.get("request_key")
        if event not in _EVENTS or not isinstance(key, str) or not key:
            self.skipped_malformed += 1
            return
        if event == "queued":
            pla = record.get("pla")
            circuit = record.get("circuit")
            options = record.get("options")
            if not isinstance(pla, str) or not isinstance(circuit, str) \
                    or not isinstance(options, dict):
                self.skipped_malformed += 1
                return
            if key not in self.payloads:
                self.order.append(key)
            self.payloads[key] = PendingJob(
                request_key=key,
                circuit=circuit,
                pla=pla,
                options=options,
                priority=str(record.get("priority", "normal")),
                client=str(record.get("client", "default")),
                submitted_unix=float(record.get("ts", 0.0) or 0.0),
            )
            self.raw_queued[key] = record
        elif key not in self.last_event and key not in self.payloads:
            # First sighting of a key via a non-queued event (its queued
            # record was compacted away or lost): keep terminal events
            # so failed post-mortems survive, order them by appearance.
            self.order.append(key)
        self.last_event[key] = event
        error = record.get("error")
        self.last_error[key] = error if isinstance(error, str) else None
        ts = record.get("ts")
        if isinstance(ts, (int, float)):
            self.last_ts[key] = float(ts)


class JobJournal:
    """Append/replay/compact interface over one segmented journal.

    With the default ``max_bytes=None`` the journal is a single
    append-only file at ``path`` — exactly the legacy behavior.
    """

    def __init__(self, path: str, *, max_bytes: int | None = None,
                 keep_segments: int = DEFAULT_KEEP_SEGMENTS,
                 clock=time.time):
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None)")
        if keep_segments < 0:
            raise ValueError("keep_segments must be >= 0")
        self.path = path
        self.max_bytes = max_bytes
        self.keep_segments = keep_segments
        self.clock = clock
        #: Appends/rotations that failed at the OS level; durability is
        #: degraded but the daemon keeps serving (health reports it).
        self.write_errors = 0
        self.last_write_error: str | None = None
        self.rotations = 0
        self.compactions = 0
        self._lock = threading.Lock()

    # -- layout ------------------------------------------------------------

    @property
    def _stem(self) -> str:
        name = os.path.basename(self.path)
        return name[: -len(".jsonl")] if name.endswith(".jsonl") else name

    @property
    def directory(self) -> str:
        return os.path.dirname(os.path.abspath(self.path))

    @property
    def checkpoint_path(self) -> str:
        return os.path.join(self.directory, f"{self._stem}.checkpoint.jsonl")

    def segment_paths(self) -> list[str]:
        """Sealed segments, oldest first (by segment number)."""
        pattern = re.compile(
            rf"^{re.escape(self._stem)}\.(\d{{4,}})\.jsonl$")
        found: list[tuple[int, str]] = []
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        for name in names:
            match = pattern.match(name)
            if match:
                found.append((int(match.group(1)),
                              os.path.join(self.directory, name)))
        return [path for _, path in sorted(found)]

    # -- writing -----------------------------------------------------------

    def record_queued(self, *, request_key: str, circuit: str, pla: str,
                      options: dict, priority: str, client: str) -> None:
        """Journal a new submission — called *before* the 202 goes out,
        so an accepted job is always durable (disk permitting)."""
        self._append({
            "schema": JOURNAL_SCHEMA_VERSION,
            "event": "queued",
            "request_key": request_key,
            "circuit": circuit,
            "pla": pla,
            "options": options,
            "priority": priority,
            "client": client,
            "ts": self.clock(),
        })

    def record_event(self, event: str, request_key: str,
                     error: str | None = None) -> None:
        """Journal a ``running``/``done``/``failed`` transition."""
        if event not in _EVENTS:
            raise ValueError(f"unknown journal event {event!r}")
        record = {
            "schema": JOURNAL_SCHEMA_VERSION,
            "event": event,
            "request_key": request_key,
            "ts": self.clock(),
        }
        if error is not None:
            record["error"] = error
        self._append(record)

    def _append(self, record: dict) -> None:
        """One durable append: rotate if due, write, absorb OS faults."""
        with self._lock:
            try:
                self._maybe_rotate_locked()
                append_jsonl(self.path, record)
            except OSError as exc:
                self.write_errors += 1
                self.last_write_error = str(exc)
                self._metric(
                    "journal.write.errors",
                    "journal appends/rotations lost to OS-level faults",
                ).inc()

    # -- rotation and compaction -------------------------------------------

    def _maybe_rotate_locked(self) -> None:
        if self.max_bytes is None:
            return
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return
        if size < self.max_bytes:
            return
        self._rotate_locked()
        if len(self.segment_paths()) > self.keep_segments:
            self._compact_locked(keep=self.keep_segments)

    def _rotate_locked(self) -> None:
        """Seal the active tail as the next numbered segment (atomic)."""
        segments = self.segment_paths()
        number = 1
        if segments:
            last = os.path.basename(segments[-1])
            number = int(last[len(self._stem) + 1:-len(".jsonl")]) + 1
        segment = os.path.join(
            self.directory, f"{self._stem}.{number:04d}.jsonl")
        faultfs.fs_replace(self.path, segment)
        self.rotations += 1
        self._metric("journal.rotations", "journal tail rotations").inc()

    def rotate(self) -> str | None:
        """Seal the current tail now (CLI/compaction entry point)."""
        with self._lock:
            try:
                if os.path.getsize(self.path) == 0:
                    return None
            except OSError:
                return None
            before = self.rotations
            try:
                self._rotate_locked()
            except OSError as exc:
                self.write_errors += 1
                self.last_write_error = str(exc)
                return None
            if self.rotations == before:
                return None
            return self.segment_paths()[-1]

    def compact(self, *, keep: int | None = None) -> dict:
        """Fold sealed segments into the checkpoint; returns stats.

        ``keep`` bounds how many of the *newest* sealed segments stay
        un-compacted (default: this journal's ``keep_segments``).  Pass
        ``keep=0`` to fold every sealed segment.
        """
        with self._lock:
            return self._compact_locked(
                keep=self.keep_segments if keep is None else keep)

    def _compact_locked(self, *, keep: int) -> dict:
        segments = self.segment_paths()
        victims = segments[: max(0, len(segments) - keep)]
        header, body, corrupt = self._read_checkpoint()
        if not victims and not corrupt:
            return {"compacted_segments": 0, "retired": 0,
                    "kept": len(segments)}
        fold = _Fold()
        for record in body:
            fold.feed(record)
        for path in victims:
            for record in read_jsonl(path):
                fold.feed(record)
        retired_before = int((header or {}).get("retired", 0) or 0)
        dropped_before = int((header or {}).get("dropped_malformed", 0) or 0)
        retired = 0
        lines: list[str] = []
        for key in fold.order:
            last = fold.last_event.get(key)
            if last == "done":
                retired += 1
                continue
            if last == "failed":
                record = {
                    "schema": JOURNAL_SCHEMA_VERSION,
                    "event": "failed",
                    "request_key": key,
                    "ts": fold.last_ts.get(key, 0.0),
                }
                if fold.last_error.get(key):
                    record["error"] = fold.last_error[key]
                lines.append(json.dumps(record, sort_keys=True))
                continue
            raw = fold.raw_queued.get(key)
            if raw is None:
                # An unfinished key whose queued payload never made it
                # to disk cannot be reconstructed; drop and count it.
                fold.skipped_malformed += 1
                continue
            lines.append(json.dumps(raw, sort_keys=True))
            if last == "running":
                lines.append(json.dumps({
                    "schema": JOURNAL_SCHEMA_VERSION,
                    "event": "running",
                    "request_key": key,
                    "ts": fold.last_ts.get(key, 0.0),
                }, sort_keys=True))
        for record in fold.foreign:
            lines.append(json.dumps(record, sort_keys=True))
        body_text = "".join(line + "\n" for line in lines)
        header_record = {
            "schema": JOURNAL_SCHEMA_VERSION,
            "kind": "checkpoint",
            "created_unix": self.clock(),
            "compactions": self.compactions + 1,
            "retired": retired_before + retired,
            "dropped_malformed": dropped_before + fold.skipped_malformed,
            "body_sha256": hashlib.sha256(
                body_text.encode("utf-8")).hexdigest(),
        }
        text = json.dumps(header_record, sort_keys=True) + "\n" + body_text
        try:
            faultfs.atomic_write_text(self.checkpoint_path, text)
        except OSError as exc:
            self.write_errors += 1
            self.last_write_error = str(exc)
            self._metric(
                "journal.write.errors",
                "journal appends/rotations lost to OS-level faults",
            ).inc()
            return {"compacted_segments": 0, "retired": 0,
                    "kept": len(segments), "error": str(exc)}
        # Unlink only after the checkpoint is durably in place.  A crash
        # here leaves segments whose content is already folded — replay
        # folds them again idempotently.
        for path in victims:
            try:
                os.unlink(path)
            except OSError:
                pass
        self.compactions += 1
        self._metric("journal.compactions", "journal compactions run").inc()
        if retired:
            self._metric(
                "journal.retired",
                "finished keys dropped from the journal by compaction",
            ).inc(retired)
        return {"compacted_segments": len(victims), "retired": retired,
                "kept": len(segments) - len(victims)}

    # -- checkpoint I/O ----------------------------------------------------

    def _read_checkpoint(self) -> tuple[dict | None, list[dict], bool]:
        """``(header, body_records, corrupt)`` for the checkpoint file.

        Absent checkpoint → ``(None, [], False)``.  A checksum mismatch
        or unparsable header flags ``corrupt`` but still yields every
        parseable body record — replay recovers best-effort and the
        corruption is surfaced, not hidden.
        """
        try:
            with open(self.checkpoint_path, "rb") as handle:
                raw = handle.read()
        except OSError:
            return None, [], False
        newline = raw.find(b"\n")
        if newline < 0:
            return None, [], True
        header_bytes, body_bytes = raw[: newline + 1], raw[newline + 1:]
        header: dict | None = None
        corrupt = False
        try:
            parsed = json.loads(header_bytes.decode("utf-8"))
            if isinstance(parsed, dict) and parsed.get("kind") == "checkpoint":
                header = parsed
        except (ValueError, UnicodeDecodeError):
            pass
        if header is None:
            corrupt = True
        else:
            expected = header.get("body_sha256")
            actual = hashlib.sha256(body_bytes).hexdigest()
            if expected != actual:
                corrupt = True
        records: list[dict] = []
        for line in body_bytes.decode("utf-8", errors="replace").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                corrupt = True
                continue
            if isinstance(record, dict):
                records.append(record)
        return header, records, corrupt

    # -- replay ------------------------------------------------------------

    def replay(self) -> ReplayReport:
        """Fold checkpoint + segments + tail; unfinished jobs oldest first.

        Torn lines were already dropped by the reader; additionally a
        record with a schema version newer than this code understands is
        skipped (an old daemon must not half-parse a new daemon's
        records), as is anything missing its event or key.
        """
        report = ReplayReport()
        fold = _Fold()
        _, checkpoint_body, corrupt = self._read_checkpoint()
        report.checkpoint_corrupt = corrupt
        for record in checkpoint_body:
            fold.feed(record)
        for path in self.segment_paths():
            for record in read_jsonl(path):
                fold.feed(record)
        for record in read_jsonl(self.path):
            fold.feed(record)
        report.skipped_schema = fold.skipped_schema
        report.skipped_malformed = fold.skipped_malformed
        for key in fold.order:
            if fold.last_event.get(key) in _TERMINAL:
                report.finished += 1
            elif key in fold.payloads:
                report.pending.append(fold.payloads[key])
        return report

    # -- inspection (journalctl) -------------------------------------------

    def scan(self) -> dict:
        """Per-file shape of the journal, for ``journalctl inspect``."""
        files = []
        header, _, corrupt = self._read_checkpoint()
        for path in self.segment_paths() + [self.path]:
            files.append(self._scan_file(path))
        report = self.replay()
        return {
            "directory": self.directory,
            "checkpoint": {
                "path": self.checkpoint_path,
                "present": os.path.exists(self.checkpoint_path),
                "corrupt": corrupt,
                "retired": int((header or {}).get("retired", 0) or 0),
                "compactions": int(
                    (header or {}).get("compactions", 0) or 0),
            },
            "files": files,
            "pending": len(report.pending),
            "finished": report.finished,
            "skipped_schema": report.skipped_schema,
            "skipped_malformed": report.skipped_malformed,
        }

    @staticmethod
    def _scan_file(path: str) -> dict:
        info: dict = {"path": path, "bytes": 0, "records": 0,
                      "blank": 0, "torn_tail": False, "unparsable_mid": 0}
        try:
            info["bytes"] = os.path.getsize(path)
            with open(path, encoding="utf-8", errors="replace") as handle:
                lines = handle.read().splitlines()
        except OSError:
            info["missing"] = True
            return info
        bad_indices = []
        for index, line in enumerate(lines):
            line = line.strip()
            if not line:
                info["blank"] += 1
                continue
            try:
                record = json.loads(line)
            except ValueError:
                bad_indices.append(index)
                continue
            if isinstance(record, dict):
                info["records"] += 1
            else:
                bad_indices.append(index)
        # One unparsable *final* line is the documented crash shape (a
        # torn append, healed by the next write); anything else is real
        # corruption.
        if bad_indices and bad_indices[-1] == len(lines) - 1:
            info["torn_tail"] = True
            bad_indices = bad_indices[:-1]
        info["unparsable_mid"] = len(bad_indices)
        return info

    def verify(self) -> list[str]:
        """Integrity problems, empty when the journal is sound.

        What counts as corruption is what the write discipline promises
        can never happen: the checkpoint is written atomically and
        checksummed, so a header/checksum failure or an unparsable body
        line there is a hard problem.  The append-only segments and
        tail promise less — a crash legitimately leaves a torn line,
        which healing then strands mid-file — so unparsable lines there
        are reported by :meth:`scan` but are *not* corruption (readers
        skip them by contract).
        """
        problems: list[str] = []
        _, _, corrupt = self._read_checkpoint()
        if corrupt:
            problems.append(
                f"checkpoint {self.checkpoint_path}: checksum/header "
                "verification failed")
        return problems

    # -- metrics -----------------------------------------------------------

    @staticmethod
    def _metric(name: str, help_text: str):
        from repro.obs.metrics import get_metrics_registry

        return get_metrics_registry().counter(name, help_text)
