"""Durable job journal: an append-only JSONL write-ahead log.

The in-memory :class:`~repro.serve.jobs.JobQueue` is fast but mortal —
before this journal existed, a daemon restart dropped every queued
request.  The journal makes the queue durable with the same discipline
the run-history store uses (single ``O_APPEND`` writes of whole lines,
torn-tail healing, torn lines skipped on read): every state transition
of a job is one appended event, keyed by the engine's ``request_key``.

Event lifecycle per key::

    queued  ->  running  ->  done | failed

A ``queued`` event carries everything needed to *reconstruct* the job
(the PLA text, the circuit name, the raw JSON options overrides, the
priority class and client id); the later transitions are skeletal.  On
boot, :meth:`JobJournal.replay` folds the log per key: any key whose
*last* event is ``queued`` or ``running`` is unfinished business — the
daemon that accepted it crashed before finishing — and is re-enqueued.
Because results are content-addressed (same key ⇒ same answer) and the
disk cache is shared, a replayed job that a peer already finished costs
one cache lookup, and a replayed job nobody finished synthesizes
bit-identically to what the dead daemon would have produced.

Several daemons may share one journal file: appends interleave whole
lines, replay is idempotent (re-enqueueing a finished key ends at the
cache), and the lease files (:mod:`repro.resilience.lease`) keep two
daemons from synthesizing one key concurrently.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.obs.history.store import append_jsonl, read_jsonl

__all__ = ["JOURNAL_SCHEMA_VERSION", "JobJournal", "PendingJob"]

JOURNAL_SCHEMA_VERSION = 1

#: Events that end a key's lifecycle.
_TERMINAL = ("done", "failed")
_EVENTS = ("queued", "running") + _TERMINAL


@dataclass
class PendingJob:
    """One unfinished job reconstructed from the journal."""

    request_key: str
    circuit: str
    pla: str
    options: dict
    priority: str
    client: str
    submitted_unix: float


@dataclass
class ReplayReport:
    """What :meth:`JobJournal.replay` saw (metrics feed off this)."""

    pending: list[PendingJob] = field(default_factory=list)
    finished: int = 0
    #: Records skipped for an unknown (newer) schema version.
    skipped_schema: int = 0
    #: Records skipped as malformed (missing event/key, bad payload).
    skipped_malformed: int = 0


class JobJournal:
    """Append/replay interface over one JSONL journal file."""

    def __init__(self, path: str):
        self.path = path

    # -- writing -----------------------------------------------------------

    def record_queued(self, *, request_key: str, circuit: str, pla: str,
                      options: dict, priority: str, client: str) -> None:
        """Journal a new submission — called *before* the 202 goes out,
        so an accepted job is always durable."""
        append_jsonl(self.path, {
            "schema": JOURNAL_SCHEMA_VERSION,
            "event": "queued",
            "request_key": request_key,
            "circuit": circuit,
            "pla": pla,
            "options": options,
            "priority": priority,
            "client": client,
            "ts": time.time(),
        })

    def record_event(self, event: str, request_key: str,
                     error: str | None = None) -> None:
        """Journal a ``running``/``done``/``failed`` transition."""
        if event not in _EVENTS:
            raise ValueError(f"unknown journal event {event!r}")
        record = {
            "schema": JOURNAL_SCHEMA_VERSION,
            "event": event,
            "request_key": request_key,
            "ts": time.time(),
        }
        if error is not None:
            record["error"] = error
        append_jsonl(self.path, record)

    # -- replay ------------------------------------------------------------

    def replay(self) -> ReplayReport:
        """Fold the journal and return the unfinished jobs, oldest first.

        Torn lines were already dropped by the reader; additionally a
        record with a schema version newer than this code understands is
        skipped (an old daemon must not half-parse a new daemon's
        records), as is anything missing its event or key.
        """
        report = ReplayReport()
        last_event: dict[str, str] = {}
        payloads: dict[str, PendingJob] = {}
        order: list[str] = []
        for record in read_jsonl(self.path):
            schema = record.get("schema")
            if not isinstance(schema, int) \
                    or schema > JOURNAL_SCHEMA_VERSION:
                report.skipped_schema += 1
                continue
            event = record.get("event")
            key = record.get("request_key")
            if event not in _EVENTS or not isinstance(key, str) or not key:
                report.skipped_malformed += 1
                continue
            if event == "queued":
                pla = record.get("pla")
                circuit = record.get("circuit")
                options = record.get("options")
                if not isinstance(pla, str) or not isinstance(circuit, str) \
                        or not isinstance(options, dict):
                    report.skipped_malformed += 1
                    continue
                if key not in payloads:
                    order.append(key)
                payloads[key] = PendingJob(
                    request_key=key,
                    circuit=circuit,
                    pla=pla,
                    options=options,
                    priority=str(record.get("priority", "normal")),
                    client=str(record.get("client", "default")),
                    submitted_unix=float(record.get("ts", 0.0) or 0.0),
                )
            last_event[key] = event
        for key in order:
            if last_event.get(key) in _TERMINAL:
                report.finished += 1
            else:
                report.pending.append(payloads[key])
        return report
