"""The repro-serve HTTP daemon: stdlib asyncio, no framework.

HTTP/1.1 is hand-rolled on ``asyncio.start_server`` — request line,
headers, ``Content-Length`` body, one request per connection — because
the container bakes in only the standard library.  Endpoints:

==========================  =============================================
``POST /synthesize``        submit a PLA (JSON body: ``pla``, optional
                            ``name``/``options``/``wait``/``priority``/
                            ``client``); 200 with the finished job when
                            ``wait`` is true, else 202 with the job id
                            and request key.  Identical in-flight
                            requests join the same job (``deduplicated``
                            in the response); an exhausted client quota
                            is a 429 and a shed submission (queue past
                            its high-water mark, or low priority while
                            degraded) is a 503, both with a
                            ``Retry-After`` header.
``GET /jobs``               summaries of every job this process has seen
``GET /jobs/<id>``          full job document, run manifest included
``GET /jobs/<id>/trace``    the request's span tree (full FlowTrace
                            document; 404 until the job is done)
``GET /metrics``            the process metrics registry in Prometheus
                            text exposition format
``GET /healthz``            liveness + job-state counts + durability info
==========================  =============================================

With a state directory configured the daemon is *durable*: every
submission is journaled before its 202 goes out, and on boot the
journal is replayed — jobs a previous (possibly SIGKILL'd) daemon never
finished are re-enqueued and complete bit-identically via the shared
result cache.  Lease files under the same directory let several daemons
share one cache/journal without duplicating in-flight synthesis.

SIGTERM/SIGINT trigger a graceful drain: the listener closes (new
connections are refused by the OS), queued and running jobs finish,
and the process exits 0.  A second signal cancels the drain and exits
immediately.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal

from repro.engine import EngineConfig, SynthesisEngine
from repro.errors import OverloadedError, QuotaExceededError
from repro.network.to_expr import spec_from_pla_text
from repro.obs.logs import log_event
from repro.obs.metrics import get_metrics_registry
from repro.resilience.lease import DEFAULT_TTL_SECONDS, LeaseManager
from repro.serve.health import HealthMonitor
from repro.serve.jobs import (
    DEFAULT_CLIENT,
    DEFAULT_PRIORITY,
    JobQueue,
    options_from_json,
)
from repro.serve.journal import DEFAULT_KEEP_SEGMENTS, JobJournal
from repro.serve.quota import ClientQuotas

__all__ = ["ReproServer", "resolve_state_dir"]

_MAX_BODY = 8 * 1024 * 1024  # a PLA bigger than 8 MiB is not a request

#: Environment default for the serve state directory (journal + leases);
#: like ``REPRO_CACHE_DIR``, set once per machine and every daemon on it
#: shares one durable queue.
STATE_DIR_ENV = "REPRO_SERVE_STATE_DIR"

JOURNAL_FILENAME = "journal.jsonl"
LEASE_DIRNAME = "leases"


def resolve_state_dir(explicit: str | None = None) -> str | None:
    """Effective serve state directory: explicit wins, else the env var."""
    if explicit is not None:
        return explicit
    return os.environ.get(STATE_DIR_ENV) or None


class _BadRequest(Exception):
    """Client error with a message that goes into the 400 body."""


class ReproServer:
    """One engine, one job queue, one asyncio listener."""

    def __init__(self, config: EngineConfig | None = None,
                 host: str = "127.0.0.1", port: int = 8348,
                 workers: int = 1,
                 state_dir: str | None = None,
                 quota_rate: float | None = None,
                 quota_burst: float = 10.0,
                 lease_ttl_seconds: float = DEFAULT_TTL_SECONDS,
                 journal_max_bytes: int | None = None,
                 journal_keep_segments: int = DEFAULT_KEEP_SEGMENTS,
                 max_queue_depth: int | None = None,
                 min_free_mb: int | None = None):
        self.engine = SynthesisEngine(config)
        self.state_dir = resolve_state_dir(state_dir)
        journal = leases = None
        if self.state_dir is not None:
            os.makedirs(self.state_dir, exist_ok=True)
            journal = JobJournal(
                os.path.join(self.state_dir, JOURNAL_FILENAME),
                max_bytes=journal_max_bytes,
                keep_segments=journal_keep_segments,
            )
            leases = LeaseManager(
                os.path.join(self.state_dir, LEASE_DIRNAME),
                ttl_seconds=lease_ttl_seconds,
            )
        quotas = (
            ClientQuotas(rate=quota_rate, burst=quota_burst)
            if quota_rate is not None else None
        )
        self.queue = JobQueue(self.engine, workers=workers,
                              quotas=quotas, journal=journal, leases=leases,
                              max_depth=max_queue_depth)
        self.health = HealthMonitor(
            self.queue,
            state_dir=self.state_dir,
            min_free_bytes=(min_free_mb * 1024 * 1024
                            if min_free_mb else None),
            breaker=(self.engine.disk_tier.breaker
                     if self.engine.disk_tier is not None else None),
        )
        self.host = host
        self.port = port
        self.replayed = 0
        self._server: asyncio.Server | None = None
        self._shutdown = asyncio.Event()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self.queue.start()
        self._replay_journal()
        self.health.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        # Port 0 means "pick one" — publish what the OS chose.
        self.port = self._server.sockets[0].getsockname()[1]

    def _replay_journal(self) -> None:
        """Re-enqueue the unfinished backlog a dead daemon left behind."""
        if self.queue.journal is None:
            return
        registry = get_metrics_registry()
        report = self.queue.journal.replay()
        for skipped, counter, help_text in (
            (report.skipped_schema, "serve.journal.skipped_schema",
             "journal records with an unknown (newer) schema version"),
            (report.skipped_malformed, "serve.journal.skipped_malformed",
             "journal records dropped as malformed"),
        ):
            if skipped:
                registry.counter(counter, help_text).inc(skipped)
        for pending in report.pending:
            try:
                spec = spec_from_pla_text(pending.pla, name=pending.circuit)
                overrides = options_from_json(pending.options)
                job, _ = self.queue.submit(
                    spec, overrides,
                    priority=pending.priority
                    if pending.priority in ("high", "normal", "low")
                    else DEFAULT_PRIORITY,
                    client=pending.client,
                    replayed=True,
                )
                if job.key != pending.request_key:
                    # The recomputed key differs (e.g. the journal came
                    # from a daemon with different default options).
                    # Re-journal the work under the key its lifecycle
                    # events will actually use and retire the old entry,
                    # or every future boot replays it again.
                    self.queue.journal.record_queued(
                        request_key=job.key, circuit=pending.circuit,
                        pla=pending.pla, options=pending.options,
                        priority=job.priority, client=pending.client,
                    )
                    self.queue.journal.record_event(
                        "done", pending.request_key
                    )
            except Exception as exc:  # noqa: BLE001 — a poisoned journal
                # entry must not take the whole boot down with it.
                registry.counter(
                    "serve.journal.replay_errors",
                    "journal entries that failed to re-enqueue",
                ).inc()
                log_event("serve.journal.replay_error",
                          request_key=pending.request_key,
                          error=f"{type(exc).__name__}: {exc}")
                continue
            self.replayed += 1
            registry.counter(
                "serve.journal.replayed",
                "unfinished journal entries re-enqueued on boot",
            ).inc()
            log_event("serve.journal.replayed",
                      request_key=pending.request_key,
                      circuit=pending.circuit, priority=pending.priority)

    async def serve_forever(self, install_signals: bool = True) -> None:
        """Run until SIGTERM/SIGINT, then drain and return."""
        if self._server is None:
            await self.start()
        if install_signals:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(sig, self._shutdown.set)
        await self._shutdown.wait()
        await self.stop()

    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def stop(self) -> None:
        """Stop accepting, drain the queue, release the engine."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.health.stop()
        await self.queue.drain()
        self.engine.close()

    # -- http plumbing -----------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        headers: dict[str, str] = {}
        try:
            response = await self._handle_request(reader)
            status, body = response[0], response[1]
            if len(response) > 2:
                headers = response[2]
        except _BadRequest as exc:
            status, body = 400, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 — never kill the listener
            status, body = 500, {"error": f"{type(exc).__name__}: {exc}"}
        try:
            if isinstance(body, str):
                payload = body.encode("utf-8")
                ctype = "text/plain; version=0.0.4; charset=utf-8"
            else:
                payload = json.dumps(body).encode("utf-8")
                ctype = "application/json"
            reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
                      404: "Not Found", 429: "Too Many Requests",
                      500: "Internal Server Error",
                      503: "Service Unavailable"}
            extra = "".join(
                f"{name}: {value}\r\n" for name, value in headers.items()
            )
            writer.write(
                f"HTTP/1.1 {status} {reason.get(status, 'OK')}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"{extra}"
                f"Connection: close\r\n\r\n".encode("ascii")
            )
            writer.write(payload)
            await writer.drain()
        finally:
            writer.close()

    async def _handle_request(self, reader: asyncio.StreamReader):
        request_line = (await reader.readline()).decode("ascii",
                                                        "replace").strip()
        if not request_line:
            raise _BadRequest("empty request")
        parts = request_line.split()
        if len(parts) != 3:
            raise _BadRequest(f"malformed request line: {request_line!r}")
        method, path, _version = parts
        length = 0
        while True:
            line = (await reader.readline()).decode("ascii",
                                                    "replace").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError as exc:
                    raise _BadRequest("bad Content-Length") from exc
        if length > _MAX_BODY:
            raise _BadRequest(f"body too large ({length} bytes)")
        body = await reader.readexactly(length) if length else b""
        return await self._dispatch(method, path, body)

    # -- endpoints ---------------------------------------------------------

    async def _dispatch(self, method: str, path: str, body: bytes):
        if method == "POST" and path == "/synthesize":
            return await self._post_synthesize(body)
        if method == "GET" and path == "/jobs":
            return 200, {
                "jobs": [job.summary() for job in self.queue.jobs.values()]
            }
        if method == "GET" and path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            job_id, _, sub = rest.partition("/")
            job = self.queue.get(job_id)
            if job is None:
                return 404, {"error": "no such job"}
            if sub == "trace":
                if job.trace is None:
                    return 404, {"error": f"no trace for {job_id} "
                                          f"(state: {job.state.value})"}
                return 200, {
                    "id": job.id,
                    "correlation_id": job.correlation_id,
                    "key": job.key,
                    "trace": job.trace,
                }
            if sub:
                return 404, {"error": f"no route for {method} {path}"}
            return 200, job.as_dict()
        if method == "GET" and path == "/metrics":
            return 200, get_metrics_registry().to_prometheus_text()
        if method == "GET" and path == "/healthz":
            reasons = list(self.queue.degraded_reasons)
            return 200, {
                "status": "degraded" if reasons else "ok",
                "degraded": bool(reasons),
                "reasons": reasons,
                "jobs": self.queue.counts(),
                "queue_depth": self.queue.depth(),
                "durable": self.queue.journal is not None,
                "replayed": self.replayed,
            }
        return 404, {"error": f"no route for {method} {path}"}

    async def _post_synthesize(self, body: bytes):
        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _BadRequest(f"body is not JSON: {exc}") from exc
        if not isinstance(doc, dict) or "pla" not in doc:
            raise _BadRequest('body must be a JSON object with a "pla" key')
        try:
            spec = spec_from_pla_text(
                doc["pla"], name=str(doc.get("name", "request"))
            )
        except Exception as exc:  # parser raises its own taxonomy
            raise _BadRequest(f"bad PLA: {exc}") from exc
        options_doc = doc.get("options") or {}
        try:
            overrides = options_from_json(options_doc)
        except ValueError as exc:
            raise _BadRequest(str(exc)) from exc
        priority = doc.get("priority")
        if priority is not None and priority not in ("high", "normal", "low"):
            raise _BadRequest(
                f"unknown priority {priority!r} "
                "(expected one of ['high', 'low', 'normal'])"
            )
        client = str(doc.get("client") or DEFAULT_CLIENT)

        try:
            job, deduplicated = self.queue.submit(
                spec, overrides,
                priority=priority or DEFAULT_PRIORITY,
                client=client,
                pla=str(doc["pla"]),
                options_doc=options_doc,
            )
        except QuotaExceededError as exc:
            get_metrics_registry().counter(
                "serve.quota.rejections",
                "submissions rejected by a client's token bucket",
            ).inc()
            log_event("serve.quota.rejected", client=exc.client,
                      retry_after=exc.retry_after)
            retry_after = max(1, int(exc.retry_after))
            return (
                429,
                {"error": str(exc), "client": exc.client,
                 "retry_after": retry_after},
                {"Retry-After": str(retry_after)},
            )
        except OverloadedError as exc:
            # Shed, not queued: the backlog (or a degraded disk) means
            # accepting this job would make every other job slower.
            retry_after = max(1, int(exc.retry_after))
            return (
                503,
                {"error": str(exc), "reason": exc.reason,
                 "retry_after": retry_after},
                {"Retry-After": str(retry_after)},
            )
        if doc.get("wait"):
            await job.done.wait()
            response = job.as_dict()
            response["deduplicated"] = deduplicated
            return 200, response
        return 202, {
            "id": job.id,
            "key": job.key,
            "state": job.state.value,
            "priority": job.priority,
            "deduplicated": deduplicated,
        }
