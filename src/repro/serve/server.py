"""The repro-serve HTTP daemon: stdlib asyncio, no framework.

HTTP/1.1 is hand-rolled on ``asyncio.start_server`` — request line,
headers, ``Content-Length`` body, one request per connection — because
the container bakes in only the standard library.  Endpoints:

==========================  =============================================
``POST /synthesize``        submit a PLA (JSON body: ``pla``, optional
                            ``name``/``options``/``wait``); 200 with the
                            finished job when ``wait`` is true, else 202
                            with the job id.  Identical in-flight
                            requests join the same job (``deduplicated``
                            in the response).
``GET /jobs``               summaries of every job this process has seen
``GET /jobs/<id>``          full job document, run manifest included
``GET /jobs/<id>/trace``    the request's span tree (full FlowTrace
                            document; 404 until the job is done)
``GET /metrics``            the process metrics registry in Prometheus
                            text exposition format
``GET /healthz``            liveness + job-state counts
==========================  =============================================

SIGTERM/SIGINT trigger a graceful drain: the listener closes (new
connections are refused by the OS), queued and running jobs finish,
and the process exits 0.  A second signal cancels the drain and exits
immediately.
"""

from __future__ import annotations

import asyncio
import json
import signal

from repro.engine import EngineConfig, SynthesisEngine
from repro.network.to_expr import spec_from_pla_text
from repro.obs.metrics import get_metrics_registry
from repro.serve.jobs import JobQueue, options_from_json

__all__ = ["ReproServer"]

_MAX_BODY = 8 * 1024 * 1024  # a PLA bigger than 8 MiB is not a request


class _BadRequest(Exception):
    """Client error with a message that goes into the 400 body."""


class ReproServer:
    """One engine, one job queue, one asyncio listener."""

    def __init__(self, config: EngineConfig | None = None,
                 host: str = "127.0.0.1", port: int = 8348,
                 workers: int = 1):
        self.engine = SynthesisEngine(config)
        self.queue = JobQueue(self.engine, workers=workers)
        self.host = host
        self.port = port
        self._server: asyncio.Server | None = None
        self._shutdown = asyncio.Event()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self.queue.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        # Port 0 means "pick one" — publish what the OS chose.
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self, install_signals: bool = True) -> None:
        """Run until SIGTERM/SIGINT, then drain and return."""
        if self._server is None:
            await self.start()
        if install_signals:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(sig, self._shutdown.set)
        await self._shutdown.wait()
        await self.stop()

    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def stop(self) -> None:
        """Stop accepting, drain the queue, release the engine."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.queue.drain()
        self.engine.close()

    # -- http plumbing -----------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            status, body = await self._handle_request(reader)
        except _BadRequest as exc:
            status, body = 400, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 — never kill the listener
            status, body = 500, {"error": f"{type(exc).__name__}: {exc}"}
        try:
            if isinstance(body, str):
                payload = body.encode("utf-8")
                ctype = "text/plain; version=0.0.4; charset=utf-8"
            else:
                payload = json.dumps(body).encode("utf-8")
                ctype = "application/json"
            reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
                      404: "Not Found", 500: "Internal Server Error"}
            writer.write(
                f"HTTP/1.1 {status} {reason.get(status, 'OK')}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n".encode("ascii")
            )
            writer.write(payload)
            await writer.drain()
        finally:
            writer.close()

    async def _handle_request(self, reader: asyncio.StreamReader):
        request_line = (await reader.readline()).decode("ascii",
                                                        "replace").strip()
        if not request_line:
            raise _BadRequest("empty request")
        parts = request_line.split()
        if len(parts) != 3:
            raise _BadRequest(f"malformed request line: {request_line!r}")
        method, path, _version = parts
        length = 0
        while True:
            line = (await reader.readline()).decode("ascii",
                                                    "replace").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError as exc:
                    raise _BadRequest("bad Content-Length") from exc
        if length > _MAX_BODY:
            raise _BadRequest(f"body too large ({length} bytes)")
        body = await reader.readexactly(length) if length else b""
        return await self._dispatch(method, path, body)

    # -- endpoints ---------------------------------------------------------

    async def _dispatch(self, method: str, path: str, body: bytes):
        if method == "POST" and path == "/synthesize":
            return await self._post_synthesize(body)
        if method == "GET" and path == "/jobs":
            return 200, {
                "jobs": [job.summary() for job in self.queue.jobs.values()]
            }
        if method == "GET" and path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            job_id, _, sub = rest.partition("/")
            job = self.queue.get(job_id)
            if job is None:
                return 404, {"error": "no such job"}
            if sub == "trace":
                if job.trace is None:
                    return 404, {"error": f"no trace for {job_id} "
                                          f"(state: {job.state.value})"}
                return 200, {
                    "id": job.id,
                    "correlation_id": job.correlation_id,
                    "key": job.key,
                    "trace": job.trace,
                }
            if sub:
                return 404, {"error": f"no route for {method} {path}"}
            return 200, job.as_dict()
        if method == "GET" and path == "/metrics":
            return 200, get_metrics_registry().to_prometheus_text()
        if method == "GET" and path == "/healthz":
            return 200, {"status": "ok", "jobs": self.queue.counts()}
        return 404, {"error": f"no route for {method} {path}"}

    async def _post_synthesize(self, body: bytes):
        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _BadRequest(f"body is not JSON: {exc}") from exc
        if not isinstance(doc, dict) or "pla" not in doc:
            raise _BadRequest('body must be a JSON object with a "pla" key')
        try:
            spec = spec_from_pla_text(
                doc["pla"], name=str(doc.get("name", "request"))
            )
        except Exception as exc:  # parser raises its own taxonomy
            raise _BadRequest(f"bad PLA: {exc}") from exc
        try:
            overrides = options_from_json(doc.get("options") or {})
        except ValueError as exc:
            raise _BadRequest(str(exc)) from exc

        job, deduplicated = self.queue.submit(spec, overrides)
        if doc.get("wait"):
            await job.done.wait()
            response = job.as_dict()
            response["deduplicated"] = deduplicated
            return 200, response
        return 202, {
            "id": job.id,
            "state": job.state.value,
            "deduplicated": deduplicated,
        }
