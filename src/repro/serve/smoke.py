"""End-to-end service smoke: what the CI job runs.

    python -m repro.serve.smoke [--keep-cache DIR]

Boots a real ``repro-serve`` process against a temporary cache
directory, submits the same small PLA twice, and asserts the full
service contract:

1. both responses are ``done`` with bit-identical BLIF;
2. the second request cost no second synthesis (in-flight dedup, a
   memory-cache hit, or — across a restart — a disk-cache hit);
3. ``/metrics`` serves Prometheus text including the serve counters;
4. a second daemon on the same cache directory answers from disk
   (``cache_disk_hits`` > 0) — the restart-warm acceptance path;
5. the daemon runs durable (``--state-dir``): ``/healthz`` reports it,
   and the job journal on disk records the accepted work;
6. SIGTERM drains gracefully and the process exits 0.

The *crash* paths — SIGKILL mid-queue, journal replay, two live
daemons on one cache — are the separate, heavier
``python -m repro.serve.gauntlet``.  Exits non-zero with a message on
the first violated assertion.
"""

from __future__ import annotations

import argparse
import os
import re
import signal
import subprocess
import sys
import tempfile
import time

from repro.circuits import get
from repro.expr.pla import pla_from_spec, write_pla
from repro.serve.client import ServeClient

_PORT_RE = re.compile(r"127\.0\.0\.1:(\d+)")


class SmokeFailure(AssertionError):
    pass


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeFailure(message)


def _start_daemon(cache_dir: str,
                  state_dir: str | None = None
                  ) -> tuple[subprocess.Popen, ServeClient]:
    argv = [sys.executable, "-m", "repro.serve.cli",
            "--port", "0", "--cache-dir", cache_dir]
    if state_dir is not None:
        argv += ["--state-dir", state_dir]
    proc = subprocess.Popen(argv, stderr=subprocess.PIPE, text=True)
    deadline = time.monotonic() + 30
    line = ""
    while time.monotonic() < deadline:
        line = proc.stderr.readline()
        if "listening" in line:
            break
        _check(proc.poll() is None, "daemon died before listening")
    match = _PORT_RE.search(line)
    _check(match is not None, f"no port in startup line: {line!r}")
    client = ServeClient(f"http://127.0.0.1:{match.group(1)}")
    client.wait_ready()
    return proc, client


def _stop_daemon(proc: subprocess.Popen) -> None:
    proc.send_signal(signal.SIGTERM)
    code = proc.wait(timeout=30)
    proc.stderr.close()
    _check(code == 0, f"daemon exited {code} on SIGTERM (want 0)")


def _metric(metrics: str, name: str) -> float:
    for line in metrics.splitlines():
        if line.startswith(name + " "):
            return float(line.split()[1])
    return 0.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--keep-cache", default=None, metavar="DIR",
                        help="use DIR instead of a throwaway tempdir")
    args = parser.parse_args(argv)

    pla = write_pla(pla_from_spec(get("rd53")))
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        cache_dir = args.keep_cache or os.path.join(tmp, "cache")
        state_dir = os.path.join(tmp, "state")

        print("smoke: starting repro-serve ...", flush=True)
        proc, client = _start_daemon(cache_dir, state_dir)
        try:
            health = client.health()
            _check(health.get("durable") is True,
                   "daemon with --state-dir does not report durable")
            first = client.synthesize(pla, name="rd53", wait=True)
            _check(first["state"] == "done",
                   f"first job {first['state']}: {first.get('error')}")
            second = client.synthesize(pla, name="rd53", wait=True)
            _check(second["state"] == "done", "second job failed")
            _check(first["result"]["blif"] == second["result"]["blif"],
                   "responses are not bit-identical")

            metrics = client.metrics()
            _check(_metric(metrics, "serve_jobs_submitted") == 2.0,
                   "expected 2 submissions in /metrics")
            # One synthesis total: either the second submission joined the
            # first in flight (dedup) or it hit the result cache.
            synthesized_twice = (
                _metric(metrics, "serve_dedup_hits") == 0.0
                and _metric(metrics, "cache_memory_hits") == 0.0
            )
            _check(not synthesized_twice,
                   "second request was neither deduped nor a cache hit")
            print("smoke: dedup/cache hit confirmed", flush=True)
        finally:
            _stop_daemon(proc)
        print("smoke: graceful SIGTERM drain, exit 0", flush=True)

        journal = os.path.join(state_dir, "journal.jsonl")
        _check(os.path.exists(journal), "no job journal in --state-dir")
        journal_text = open(journal, encoding="utf-8").read()
        _check('"event": "queued"' in journal_text
               and '"event": "done"' in journal_text,
               "journal is missing queued/done events")
        print("smoke: job journal recorded the accepted work", flush=True)

        print("smoke: restarting on the same cache dir ...", flush=True)
        proc, client = _start_daemon(cache_dir, state_dir)
        try:
            warm = client.synthesize(pla, name="rd53", wait=True)
            _check(warm["result"]["blif"] == first["result"]["blif"],
                   "restart result differs from original")
            metrics = client.metrics()
            _check(_metric(metrics, "cache_disk_hits") > 0,
                   "restarted daemon recorded no disk-cache hits")
            print("smoke: restart answered from the disk cache", flush=True)
        finally:
            _stop_daemon(proc)

    print("smoke: OK", flush=True)
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except SmokeFailure as exc:
        print(f"smoke: FAIL: {exc}", file=sys.stderr)
        raise SystemExit(1) from exc
