"""repro-serve: synthesis as a long-lived service.

A stdlib-only asyncio daemon in front of the
:class:`~repro.engine.SynthesisEngine`: jobs go into an async queue,
identical in-flight requests are deduplicated on their content digest
(N submissions, one synthesis, N responses), multi-output jobs are
batched into the crash-isolated process pool, and results land in the
shared disk-backed cache so a restarted daemon — or a plain
``repro-synth`` run pointed at the same ``--cache-dir`` — is warm from
the first request.

See ``docs/SERVICE.md`` for the architecture and the ops runbook.
"""

from repro.serve.jobs import Job, JobQueue, JobState, options_from_json
from repro.serve.server import ReproServer

__all__ = [
    "Job",
    "JobQueue",
    "JobState",
    "ReproServer",
    "options_from_json",
]
