"""repro-serve: synthesis as a long-lived, durable service.

A stdlib-only asyncio daemon in front of the
:class:`~repro.engine.SynthesisEngine`: jobs go into a priority-aware
async queue, identical in-flight requests are deduplicated on their
content digest (N submissions, one synthesis, N responses), per-client
token buckets reject over-quota traffic with ``429`` + ``Retry-After``,
multi-output jobs are batched into the crash-isolated process pool,
and results land in the shared disk-backed cache so a restarted daemon
— or a plain ``repro-synth`` run pointed at the same ``--cache-dir`` —
is warm from the first request.

With a ``--state-dir`` the queue itself is durable: accepted jobs are
written to an append-only journal (:mod:`repro.serve.journal`) before
their 202 goes out and replayed on the next boot, and lease files
(:mod:`repro.resilience.lease`) let several daemons share one
cache/journal directory without duplicating in-flight synthesis.  The
journal rotates into sealed segments and compacts into a checksummed
checkpoint (``--journal-max-bytes``; inspect with ``python -m
repro.serve.journalctl``), a bounded queue sheds overload with 503 +
``Retry-After`` (``--max-queue-depth``), and a health monitor
(:mod:`repro.serve.health`) flips the daemon to degraded mode — shed
low priority first, stop journaling detail — when disk headroom,
journal writes or the disk-cache breaker go bad.  ``python -m
repro.serve.gauntlet`` exercises the crash paths, including phase C's
injected disk faults.

See ``docs/SERVICE.md`` for the architecture and the ops runbook.
"""

from repro.serve.health import HealthMonitor
from repro.serve.jobs import (
    DEFAULT_CLIENT,
    DEFAULT_PRIORITY,
    PRIORITY_CLASSES,
    Job,
    JobQueue,
    JobState,
    options_from_json,
)
from repro.serve.journal import (
    JOURNAL_SCHEMA_VERSION,
    JobJournal,
    PendingJob,
    ReplayReport,
)
from repro.serve.quota import ClientQuotas, QuotaDecision, TokenBucket
from repro.serve.server import ReproServer, resolve_state_dir

__all__ = [
    "ClientQuotas",
    "DEFAULT_CLIENT",
    "DEFAULT_PRIORITY",
    "HealthMonitor",
    "JOURNAL_SCHEMA_VERSION",
    "Job",
    "JobJournal",
    "JobQueue",
    "JobState",
    "PRIORITY_CLASSES",
    "PendingJob",
    "QuotaDecision",
    "ReplayReport",
    "ReproServer",
    "TokenBucket",
    "options_from_json",
    "resolve_state_dir",
]
