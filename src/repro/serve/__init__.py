"""repro-serve: synthesis as a long-lived, durable service.

A stdlib-only asyncio daemon in front of the
:class:`~repro.engine.SynthesisEngine`: jobs go into a priority-aware
async queue, identical in-flight requests are deduplicated on their
content digest (N submissions, one synthesis, N responses), per-client
token buckets reject over-quota traffic with ``429`` + ``Retry-After``,
multi-output jobs are batched into the crash-isolated process pool,
and results land in the shared disk-backed cache so a restarted daemon
— or a plain ``repro-synth`` run pointed at the same ``--cache-dir`` —
is warm from the first request.

With a ``--state-dir`` the queue itself is durable: accepted jobs are
written to an append-only journal (:mod:`repro.serve.journal`) before
their 202 goes out and replayed on the next boot, and lease files
(:mod:`repro.resilience.lease`) let several daemons share one
cache/journal directory without duplicating in-flight synthesis.
``python -m repro.serve.gauntlet`` exercises exactly those crash paths.

See ``docs/SERVICE.md`` for the architecture and the ops runbook.
"""

from repro.serve.jobs import (
    DEFAULT_CLIENT,
    DEFAULT_PRIORITY,
    PRIORITY_CLASSES,
    Job,
    JobQueue,
    JobState,
    options_from_json,
)
from repro.serve.journal import JOURNAL_SCHEMA_VERSION, JobJournal, PendingJob
from repro.serve.quota import ClientQuotas, QuotaDecision, TokenBucket
from repro.serve.server import ReproServer, resolve_state_dir

__all__ = [
    "ClientQuotas",
    "DEFAULT_CLIENT",
    "DEFAULT_PRIORITY",
    "JOURNAL_SCHEMA_VERSION",
    "Job",
    "JobJournal",
    "JobQueue",
    "JobState",
    "PRIORITY_CLASSES",
    "PendingJob",
    "QuotaDecision",
    "ReproServer",
    "TokenBucket",
    "options_from_json",
    "resolve_state_dir",
]
