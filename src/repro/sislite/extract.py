"""Fast-extract style multi-function divisor extraction (SIS ``fx``).

Shared logic between outputs — the carry chains of adders, repeated sum
terms — is recovered by repeatedly extracting the best-scoring divisor:

* **double-cube divisors**: the two-cube kernels obtained from every cube
  pair sharing a co-kernel;
* **single-cube divisors**: two-literal cubes occurring inside ≥ 2 cubes.

Each extraction creates a fresh intermediate variable, rewrites every
function through algebraic division, and appends the divisor as a new
node, until no candidate saves literals.  This is the piece that lets the
SOP baseline approach SIS-quality results on multi-output arithmetic.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.sislite.divisors import CubeSet, divide, pos_lit

_MAX_PAIRS_PER_FUNCTION = 6000
_MAX_ITERATIONS = 400


@dataclass
class ExtractedNetwork:
    """Functions 0..num_roots-1 are outputs; the rest are divisor nodes.

    ``node_var[i]`` is the variable id driving function ``i`` (only
    divisor nodes have one; roots are read positionally).
    """

    num_inputs: int
    num_roots: int
    functions: list[list[CubeSet]]
    node_var: dict[int, int] = field(default_factory=dict)
    next_var: int = 0


def fast_extract(
    functions: list[list[CubeSet]], num_inputs: int,
    strength: str = "sis",
) -> ExtractedNetwork:
    """Extract shared divisors; returns the rewritten multi-function net.

    ``strength`` calibrates the divisor-value heuristic:

    * ``"sis"`` (default) — the vintage weighting (no co-kernel credit),
      calibrated so the baseline's literal counts land in the range the
      paper publishes for SIS 1.2 (see EXPERIMENTS.md);
    * ``"strong"`` — full literal-savings accounting including co-kernel
      contributions, a noticeably better modern extractor.
    """
    if strength not in ("sis", "strong"):
        raise ValueError(f"unknown extraction strength {strength!r}")
    net = ExtractedNetwork(
        num_inputs=num_inputs,
        num_roots=len(functions),
        functions=[list(f) for f in functions],
        next_var=num_inputs,
    )
    for _ in range(_MAX_ITERATIONS):
        divisor, value = _best_candidate(net.functions, strength)
        if divisor is None or value <= 0:
            break
        _extract(net, divisor)
    return net


def _best_candidate(
    functions: list[list[CubeSet]], strength: str = "strong",
) -> tuple[list[CubeSet] | None, int]:
    double_count: Counter[tuple[CubeSet, ...]] = Counter()
    double_saving: Counter[tuple[CubeSet, ...]] = Counter()
    single_candidates: set[CubeSet] = set()
    for cubes in functions:
        _collect_double(cubes, double_count, double_saving)
        _collect_single(cubes, single_candidates)
    best: list[CubeSet] | None = None
    best_value = 0
    for pair, occurrences in double_count.items():
        if occurrences < 2:
            continue
        lits = sum(len(c) for c in pair)
        if strength == "strong":
            # Each occurrence replaces two cubes (lits(d) + 2·lits(cc)
            # literals) by one quotient cube (lits(cc) + 1); the divisor
            # itself costs lits(d).
            value = double_saving[pair] - lits
        else:
            # Vintage weighting: no co-kernel credit (calibrated against
            # the SIS 1.2 numbers the paper publishes).
            value = occurrences * (lits - 1) - lits
        if value > best_value:
            best_value = value
            best = list(pair)
    for cube in single_candidates:
        containing = sum(
            1 for cubes in functions for c in cubes if cube <= c
        )
        if containing < 2:
            continue
        value = containing * (len(cube) - 1) - len(cube)
        if value > best_value:
            best_value = value
            best = [cube]
    return best, best_value


_SINGLE_CUBE_SIZE = 2  # classic fast_extract: 2-literal single-cube divisors


def _collect_double(cubes: list[CubeSet], count: Counter,
                    saving: Counter) -> None:
    limit = _MAX_PAIRS_PER_FUNCTION
    pairs = 0
    for i in range(len(cubes)):
        for j in range(i + 1, len(cubes)):
            pairs += 1
            if pairs > limit:
                return
            common = cubes[i] & cubes[j]
            a = cubes[i] - common
            b = cubes[j] - common
            if not a or not b:
                continue  # containment, not a divisor
            pair = tuple(sorted((a, b), key=sorted))
            count[pair] += 1
            saving[pair] += len(a) + len(b) + len(common) - 1


def _collect_single(cubes: list[CubeSet], candidates: set[CubeSet]) -> None:
    """Classic fast_extract considers 2-literal single-cube divisors only;
    larger shared cubes emerge through repeated 2-literal extractions."""
    pairs = 0
    for i in range(len(cubes)):
        for j in range(i + 1, len(cubes)):
            pairs += 1
            if pairs > _MAX_PAIRS_PER_FUNCTION:
                return
            common = sorted(cubes[i] & cubes[j])
            if len(common) == _SINGLE_CUBE_SIZE:
                candidates.add(frozenset(common))
            elif len(common) > _SINGLE_CUBE_SIZE:
                # Adjacent 2-literal subcubes keep the candidate pool linear.
                for k in range(len(common) - 1):
                    candidates.add(frozenset(common[k:k + 2]))


def _extract(net: ExtractedNetwork, divisor: list[CubeSet]) -> None:
    var = net.next_var
    net.next_var += 1
    literal = pos_lit(var)
    rewritten = []
    for cubes in net.functions:
        quotient, remainder = divide(cubes, divisor)
        if quotient:
            cubes = [q | {literal} for q in quotient] + remainder
        rewritten.append(cubes)
    net.functions = rewritten
    net.functions.append(list(divisor))
    net.node_var[len(net.functions) - 1] = var
