"""Baseline script drivers — the stand-ins for SIS ``rugged``/``algebraic``.

``script_rugged_lite`` is the full pipeline the paper's Table 2 compares
against: two-level minimization per output (ISOP + espresso-lite), shared
divisor extraction across outputs (fx), kernel-based good-factoring, and
decomposition into a 2-input AND/OR/NOT network.  ``script_algebraic``
skips the cross-output extraction, mirroring the cheaper SIS script.

Wide-support outputs specified as multilevel expressions (e.g. the 16-bit
adder) are kept structural with XOR gates expanded into AND/OR logic —
SIS, too, processes such designs node-wise in SOP space and pays the
3-gate price per XOR.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import VerificationError
from repro.expr import expression as ex
from repro.expr.demorgan import minimize_inverters_guarded
from repro.network.build import add_expr
from repro.network.netlist import Network
from repro.network.verify import VerifyResult, equivalent_to_spec
from repro.sislite.divisors import (
    CubeSet,
    cover_to_cubesets,
    lit_negated,
    lit_var,
)
from repro.sislite.espresso import minimize_cover
from repro.sislite.extract import ExtractedNetwork, fast_extract
from repro.sislite.factor import factor_cover
from repro.sislite.isop import isop_cover
from repro.sislite.red_removal import remove_redundant_wires
from repro.spec import CircuitSpec, OutputSpec

_DENSE_LIMIT = 16
_SOP_CUBE_CAP = 600
_RED_REMOVAL_GATE_CAP = 300


def _shannon_expr(bits, width: int, memo: dict) -> ex.Expr:
    """Mux-tree (Shannon) decomposition of a dense truth table.

    The escape hatch for functions whose irredundant covers explode
    (16-input parity has 2^15 prime cubes): a conventional tool cannot
    flatten them either and falls back to whatever structure it has.  Memo
    on the table bytes shares equal cofactors, so e.g. parity costs two
    mux chains, not an exponential tree.
    """
    key = (width, bits.tobytes())
    cached = memo.get(key)
    if cached is not None:
        return cached
    if not bits.any():
        result: ex.Expr = ex.FALSE
    elif bits.all():
        result = ex.TRUE
    elif width <= 4:
        from repro.sislite.isop import isop_cover
        from repro.truth.table import TruthTable

        cover = isop_cover(TruthTable(width, bits.astype("uint8")))
        terms = []
        for cube in cover:
            lits: list[ex.Expr] = []
            for var in range(width):
                bit = 1 << var
                if cube.pos & bit:
                    lits.append(ex.Lit(var))
                elif cube.neg & bit:
                    lits.append(ex.Lit(var, True))
            terms.append(ex.and_(lits))
        result = ex.or_(terms)
    else:
        half = len(bits) // 2
        var = width - 1
        if (bits[:half] == bits[half:]).all():
            result = _shannon_expr(bits[:half], var, memo)
        else:
            e0 = _shannon_expr(bits[:half], var, memo)
            e1 = _shannon_expr(bits[half:], var, memo)
            x = ex.Lit(var)
            result = ex.or_([ex.and_([x, e1]), ex.and_([ex.not_(x), e0])])
    memo[key] = result
    return result


@dataclass
class BaselineResult:
    """Mirror of :class:`repro.core.synthesis.SynthesisResult` for sislite."""

    network: Network
    verify: VerifyResult | None = None
    seconds: float = 0.0

    @property
    def two_input_gates(self) -> int:
        return self.network.two_input_gate_count()

    @property
    def literals(self) -> int:
        return self.network.literal_count()


def script_rugged_lite(spec: CircuitSpec, verify: bool = True) -> BaselineResult:
    """Full SOP baseline: simplify + fx extraction + good factor."""
    return _run(spec, extract=True, verify=verify)


def script_algebraic(spec: CircuitSpec, verify: bool = True) -> BaselineResult:
    """Per-output SOP baseline without cross-output extraction."""
    return _run(spec, extract=False, verify=verify)


def script_structural(spec: CircuitSpec, verify: bool = True) -> BaselineResult:
    """Structure-preserving baseline: keep multilevel specifications as
    given (XORs expanded to AND/OR), flatten only table/cover outputs.

    Mirrors how SIS handles the multilevel benchmark set — scripts like
    ``rugged`` optimize the existing node structure rather than collapsing
    whole circuits to two-level form.
    """
    return _run(spec, extract=True, verify=verify, prefer_structure=True)


def best_baseline(spec: CircuitSpec, verify: bool = True
                  ) -> tuple[BaselineResult, str]:
    """The better of the SOP and structural baselines (fewest gates).

    The paper compares against "the best results of the three SIS scripts
    rugged, boolean and algebraic"; this is the analogous selection over
    our script stand-ins.
    """
    candidates: list[tuple[BaselineResult, str]] = [
        (script_rugged_lite(spec, verify), "rugged_lite")
    ]
    if any(o.expr is not None for o in spec.outputs):
        candidates.append((script_structural(spec, verify), "structural"))
    return min(candidates, key=lambda item: item[0].two_input_gates)


def _run(spec: CircuitSpec, extract: bool, verify: bool,
         prefer_structure: bool = False) -> BaselineResult:
    start = time.perf_counter()
    sop_indices: list[int] = []
    sop_functions: list[list[CubeSet]] = []
    structural: dict[int, ex.Expr] = {}
    for index, output in enumerate(spec.outputs):
        if prefer_structure and output.expr is not None:
            structural[index] = _xor_free(output.expr)
            continue
        cubes = _two_level(output)
        if cubes is None:
            if output.expr is not None:
                structural[index] = _xor_free(output.expr)
            else:
                table = output.local_table()
                structural[index] = _shannon_expr(
                    table.bits.astype(bool), output.width, {}
                )
        else:
            sop_indices.append(index)
            sop_functions.append(_globalize(cubes, output))
    if extract and sop_functions:
        net_ir = fast_extract(sop_functions, spec.num_inputs)
    else:
        net_ir = ExtractedNetwork(
            num_inputs=spec.num_inputs,
            num_roots=len(sop_functions),
            functions=sop_functions,
            next_var=spec.num_inputs,
        )
    network = _build_network(spec, net_ir, sop_indices, structural)
    if network.two_input_gate_count() <= _RED_REMOVAL_GATE_CAP:
        # The paper runs SIS red_removal after every script "to make fair
        # comparisons"; mirror that on tractable networks.
        network = remove_redundant_wires(network)
    result = BaselineResult(network=network,
                            seconds=time.perf_counter() - start)
    if verify:
        result.verify = equivalent_to_spec(network, spec)
        if not result.verify:
            raise VerificationError(
                f"{spec.name}: baseline network not equivalent "
                f"({result.verify.method}: {result.verify.detail})"
            )
    return result


def _two_level(output: OutputSpec) -> list[CubeSet] | None:
    """Minimized SOP cubes over local variables; None → keep structural."""
    if output.width <= _DENSE_LIMIT:
        table = output.local_table()
        cover = isop_cover(table)
        if len(cover) > _SOP_CUBE_CAP:
            return None  # two-level form explodes (e.g. wide parity)
        cover = minimize_cover(cover, table)
        return cover_to_cubesets(cover)
    if output.cover is not None:
        return cover_to_cubesets(output.cover.single_cube_containment())
    if output.expr is not None and _is_shallow_or_of_ands(output.expr):
        return _flatten_or_of_ands(output.expr)
    return None


def _globalize(cubes: list[CubeSet], output: OutputSpec) -> list[CubeSet]:
    mapped = []
    for cube in cubes:
        mapped.append(
            frozenset(
                2 * output.support[lit_var(lit)] + (lit & 1) for lit in cube
            )
        )
    return mapped


def _is_shallow_or_of_ands(expr: ex.Expr) -> bool:
    if isinstance(expr, (ex.Lit, ex.Const)):
        return True
    if isinstance(expr, ex.And):
        return all(isinstance(a, ex.Lit) for a in expr.args)
    if isinstance(expr, ex.Or):
        return all(_is_shallow_or_of_ands(a) and not isinstance(a, ex.Or)
                   for a in expr.args)
    return False


def _flatten_or_of_ands(expr: ex.Expr) -> list[CubeSet]:
    if isinstance(expr, ex.Const):
        return [frozenset()] if expr.value else []
    if isinstance(expr, ex.Lit):
        return [frozenset({2 * expr.var + int(expr.negated)})]
    if isinstance(expr, ex.And):
        lits = frozenset(2 * a.var + int(a.negated) for a in expr.args)
        return [lits]
    assert isinstance(expr, ex.Or)
    cubes: list[CubeSet] = []
    for arg in expr.args:
        cubes.extend(_flatten_or_of_ands(arg))
    return cubes


def _xor_free(expr: ex.Expr) -> ex.Expr:
    """Replace XOR with AND/OR/NOT logic (the SOP world's XOR cost)."""
    if isinstance(expr, (ex.Const, ex.Lit)):
        return expr
    if isinstance(expr, ex.Not):
        return ex.not_(_xor_free(expr.arg))
    children = [_xor_free(child) for child in expr.children()]
    if isinstance(expr, ex.And):
        return ex.and_(children)
    if isinstance(expr, ex.Or):
        return ex.or_(children)
    result = children[0]
    for child in children[1:]:
        result = ex.or_(
            [
                ex.and_([result, ex.not_(child)]),
                ex.and_([ex.not_(result), child]),
            ]
        )
    return result


def _tidy(expr: ex.Expr, width: int) -> ex.Expr:
    return minimize_inverters_guarded(expr, width)


def _build_network(
    spec: CircuitSpec,
    net_ir: ExtractedNetwork,
    sop_indices: list[int],
    structural: dict[int, ex.Expr],
) -> Network:
    network = Network(spec.num_inputs, name=f"{spec.name}:baseline",
                      input_names=spec.input_names)
    node_of_var: dict[int, int] = {
        var: network.pi(var) for var in range(spec.num_inputs)
    }

    def build_expr(expr: ex.Expr) -> int:
        if isinstance(expr, ex.Const):
            return network.const1 if expr.value else network.const0
        if isinstance(expr, ex.Lit):
            node = node_of_var[expr.var]
            return network.add_not(node) if expr.negated else node
        if isinstance(expr, ex.Not):
            return network.add_not(build_expr(expr.arg))
        kids = [build_expr(child) for child in expr.children()]
        if isinstance(expr, ex.And):
            return network.add_and_tree(kids)
        if isinstance(expr, ex.Or):
            return network.add_or_tree(kids)
        raise TypeError("baseline networks are AND/OR/NOT only")

    # Divisor nodes: later extractions can rewrite earlier divisor bodies
    # to reference newer variables, so build in dependency order.
    pending = list(range(net_ir.num_roots, len(net_ir.functions)))
    while pending:
        progressed = False
        for func_index in list(pending):
            body = net_ir.functions[func_index]
            vars_used = {lit_var(lit) for cube in body for lit in cube}
            if vars_used <= node_of_var.keys():
                expr = _tidy(factor_cover(body), net_ir.next_var)
                node_of_var[net_ir.node_var[func_index]] = build_expr(expr)
                pending.remove(func_index)
                progressed = True
        if not progressed:  # pragma: no cover - extraction is acyclic
            raise RuntimeError("cyclic divisor dependencies")

    outputs: dict[int, int] = {}
    for position, spec_index in enumerate(sop_indices):
        expr = _tidy(factor_cover(net_ir.functions[position]),
                     net_ir.next_var)
        outputs[spec_index] = build_expr(expr)
    for spec_index, expr in structural.items():
        outputs[spec_index] = add_expr(
            network,
            _tidy(expr, len(spec.outputs[spec_index].support)),
            list(spec.outputs[spec_index].support),
        )
    network.set_outputs(
        [outputs[i] for i in range(spec.num_outputs)],
        [o.name for o in spec.outputs],
    )
    return network
