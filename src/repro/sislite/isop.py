"""Minato-Morreale irredundant sum-of-products from dense truth tables.

``isop(lower, upper)`` returns a cover ``C`` with ``lower ≤ C ≤ upper``
that is irredundant by construction; with ``lower == upper`` it yields an
irredundant prime-ish cover of the function — the classical starting point
conventional flows use (t481's famous 481-cube cover arises this way).
"""

from __future__ import annotations

import numpy as np

from repro.expr.cover import Cover
from repro.expr.cube import Cube
from repro.truth.table import TruthTable


def isop_cover(table: TruthTable) -> Cover:
    """Irredundant SOP cover of ``table`` (Minato-Morreale)."""
    bits = table.bits.astype(bool)
    cubes = _isop(bits, bits, table.n, {})
    return Cover(table.n, tuple(Cube(table.n, pos, neg) for pos, neg in cubes))


def _isop(
    lower: np.ndarray, upper: np.ndarray, n: int, memo: dict
) -> tuple[tuple[int, int], ...]:
    """Cubes (pos, neg) with lower ≤ cover ≤ upper, over ``n`` variables."""
    if not lower.any():
        return ()
    if upper.all():
        return ((0, 0),)
    key = (lower.tobytes(), upper.tobytes())
    cached = memo.get(key)
    if cached is not None:
        return cached
    # Split on the top variable of this sub-universe.
    var = n - 1
    half = len(lower) // 2
    l0, l1 = lower[:half], lower[half:]
    u0, u1 = upper[:half], upper[half:]
    # Minterms needing the x̄ branch / the x branch exclusively.
    c0 = _isop(l0 & ~u1, u0, var, memo)
    c1 = _isop(l1 & ~u0, u1, var, memo)
    cov0 = _eval_cubes(c0, half)
    cov1 = _eval_cubes(c1, half)
    # What remains must be covered without the variable.
    rest_lower = (l0 & ~cov0) | (l1 & ~cov1)
    rest = _isop(rest_lower, u0 & u1, var, memo)
    bit = 1 << var
    result = (
        tuple((pos, neg | bit) for pos, neg in c0)
        + tuple((pos | bit, neg) for pos, neg in c1)
        + rest
    )
    memo[key] = result
    return result


def _eval_cubes(cubes: tuple[tuple[int, int], ...], size: int) -> np.ndarray:
    out = np.zeros(size, dtype=bool)
    if not cubes:
        return out
    indices = np.arange(size, dtype=np.uint32)
    for pos, neg in cubes:
        sel = (indices & np.uint32(pos)) == np.uint32(pos)
        if neg:
            sel &= (indices & np.uint32(neg)) == 0
        out |= sel
    return out
