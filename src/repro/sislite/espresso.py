"""Espresso-style two-level minimization (EXPAND / IRREDUNDANT loop).

A heuristic minimizer in the spirit of the espresso loop SIS runs inside
``simplify``/``full_simplify``: each cube is expanded literal by literal
while it stays inside the ON-set, then redundant cubes are removed.  With
a dense truth-table oracle the containment checks are exact; for wide
covers without a table, only single-cube containment is applied.
"""

from __future__ import annotations

import numpy as np

from repro.expr.cover import Cover
from repro.expr.cube import Cube
from repro.obs.spans import span as obs_span
from repro.truth.table import TruthTable
from repro.utils.bitops import bit_indices


def minimize_cover(cover: Cover, table: TruthTable | None = None) -> Cover:
    """EXPAND + IRREDUNDANT against ``table`` (exact oracle) if given."""
    with obs_span("espresso-minimize", category="algo") as node:
        if table is None:
            result = cover.single_cube_containment()
            if node is not None:
                node.set(oracle=False, cubes_in=len(cover.cubes),
                         cubes_out=len(result.cubes))
            return result
        onset = table.bits.astype(bool)
        indices = np.arange(len(onset), dtype=np.uint32)

        def inside_onset(pos: int, neg: int) -> bool:
            sel = (indices & np.uint32(pos)) == np.uint32(pos)
            if neg:
                sel &= (indices & np.uint32(neg)) == 0
            return bool(np.all(onset[sel]))

        dropped = 0
        expanded: list[Cube] = []
        for cube in cover:
            pos, neg = cube.pos, cube.neg
            # Try dropping literals greedily, largest-gain-first order is
            # approximated by scanning low to high variable index.
            for var in bit_indices(pos | neg):
                bit = 1 << var
                if inside_onset(pos & ~bit, neg & ~bit):
                    pos &= ~bit
                    neg &= ~bit
                    dropped += 1
            expanded.append(Cube(cover.n, pos, neg))
        result = Cover(cover.n, tuple(dict.fromkeys(expanded)))
        after_expand = len(result.cubes)
        result = result.single_cube_containment()
        result = _irredundant(result, onset, indices)
        if node is not None:
            node.set(oracle=True, cubes_in=len(cover.cubes),
                     cubes_after_expand=after_expand,
                     cubes_out=len(result.cubes),
                     literals_dropped=dropped)
        return result


def _irredundant(cover: Cover, onset: np.ndarray, indices: np.ndarray) -> Cover:
    """Remove cubes whose minterms are covered by the remaining cubes."""
    masks = []
    for cube in cover:
        sel = (indices & np.uint32(cube.pos)) == np.uint32(cube.pos)
        if cube.neg:
            sel &= (indices & np.uint32(cube.neg)) == 0
        masks.append(sel)
    keep = list(range(len(masks)))
    # Largest cubes first so small redundant fragments drop out.
    for i in sorted(range(len(masks)), key=lambda k: cover.cubes[k].num_literals,
                    reverse=True):
        others = np.zeros_like(onset)
        for j in keep:
            if j != i:
                others |= masks[j]
        if np.all(others[masks[i]]):
            keep.remove(i)
    kept = tuple(cover.cubes[i] for i in sorted(keep))
    return Cover(cover.n, kept)
