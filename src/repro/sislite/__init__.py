"""sislite — a SIS 1.2 stand-in built from the same algorithmic parts.

The paper compares against the best of the Berkeley SIS scripts ``rugged``,
``boolean`` and ``algebraic`` (plus ``red_removal``); SIS itself is a C
program we cannot run offline, so this package re-implements the
SOP/kernel-based synthesis stack those scripts are built on:

* Minato-Morreale ISOP and an espresso-style EXPAND/IRREDUNDANT loop for
  two-level minimization (:mod:`repro.sislite.isop`,
  :mod:`repro.sislite.espresso`);
* kernel/co-kernel theory and fast-extract style common-divisor extraction
  across outputs (:mod:`repro.sislite.divisors`,
  :mod:`repro.sislite.extract`);
* ``good_factor`` algebraic factoring (:mod:`repro.sislite.factor`);
* script drivers producing 2-input AND/OR/NOT networks
  (:mod:`repro.sislite.scripts`).

Networks produced here never contain XOR gates — recovering XOR structure
from SOP forms is exactly the weakness of conventional flows the paper
exploits, and keeping the baseline SOP-based preserves that comparison.
"""

from repro.sislite.scripts import BaselineResult, script_algebraic, script_rugged_lite

__all__ = ["BaselineResult", "script_algebraic", "script_rugged_lite"]
