"""Algebraic-division machinery: literal-set cubes, kernels, division.

Inside sislite, a cube is a ``frozenset`` of *literal ids* — ``2*v`` for
the positive literal of variable ``v``, ``2*v + 1`` for the negative one —
and a function is a list of such cubes (an algebraic expression: no cube
contains both phases, no cube covers another).  Variables may be primary
inputs or intermediate nodes created by extraction, which is why this
representation is used instead of the fixed-width :class:`Cube`.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

from repro.expr.cover import Cover

CubeSet = frozenset[int]


def pos_lit(var: int) -> int:
    return 2 * var


def neg_lit(var: int) -> int:
    return 2 * var + 1


def lit_var(lit: int) -> int:
    return lit // 2


def lit_negated(lit: int) -> bool:
    return bool(lit & 1)


def cover_to_cubesets(cover: Cover) -> list[CubeSet]:
    cubes = []
    for cube in cover:
        lits = set()
        for var in range(cover.n):
            bit = 1 << var
            if cube.pos & bit:
                lits.add(pos_lit(var))
            elif cube.neg & bit:
                lits.add(neg_lit(var))
        cubes.append(frozenset(lits))
    return cubes


def literal_count(cubes: Iterable[CubeSet]) -> int:
    return sum(len(c) for c in cubes)


def literal_histogram(cubes: Iterable[CubeSet]) -> Counter:
    counts: Counter[int] = Counter()
    for cube in cubes:
        counts.update(cube)
    return counts


def divide(cubes: list[CubeSet], divisor: list[CubeSet]
           ) -> tuple[list[CubeSet], list[CubeSet]]:
    """Algebraic (weak) division: ``F = D·Q + R`` with Q, R cube lists."""
    if not divisor:
        return [], list(cubes)
    quotients: list[set[CubeSet]] = []
    for d in divisor:
        matches = {c - d for c in cubes if d <= c}
        if not matches:
            return [], list(cubes)
        quotients.append(matches)
    quotient = set.intersection(*quotients)
    if not quotient:
        return [], list(cubes)
    quotient = sorted(quotient, key=sorted)
    used = {q | d for q in quotient for d in divisor}
    remainder = [c for c in cubes if c not in used]
    return list(quotient), remainder


def kernels(cubes: list[CubeSet], max_kernels: int = 200
            ) -> list[tuple[CubeSet, list[CubeSet]]]:
    """All (co-kernel, kernel) pairs, capped for big covers.

    A kernel is a cube-free quotient of the function by a cube; cube-free
    means no literal appears in every cube.  The top-level function itself
    is included when cube-free.
    """
    out: list[tuple[CubeSet, list[CubeSet]]] = []
    seen: set[frozenset[CubeSet]] = set()

    def record(cokernel: CubeSet, kernel: list[CubeSet]) -> None:
        key = frozenset(kernel)
        if key not in seen:
            seen.add(key)
            out.append((cokernel, sorted(kernel, key=sorted)))

    def walk(current: list[CubeSet], min_lit: int, cokernel: CubeSet) -> None:
        if len(out) >= max_kernels:
            return
        counts = literal_histogram(current)
        for lit in sorted(counts):
            if lit < min_lit or counts[lit] < 2:
                continue
            sub = [c - {lit} for c in current if lit in c]
            common = frozenset.intersection(*sub) if sub else frozenset()
            if any(other < lit for other in common):
                continue  # already enumerated from the smaller literal
            kernel = [c - common for c in sub]
            new_cokernel = cokernel | {lit} | common
            record(new_cokernel, kernel)
            walk(kernel, lit + 1, new_cokernel)

    base_common = frozenset.intersection(*cubes) if cubes else frozenset()
    if cubes and not base_common:
        record(frozenset(), list(cubes))
    elif cubes:
        record(base_common, [c - base_common for c in cubes])
    walk([c - base_common for c in cubes], -1, base_common)
    return out


def is_cube_free(cubes: list[CubeSet]) -> bool:
    if not cubes:
        return True
    return not frozenset.intersection(*cubes)
