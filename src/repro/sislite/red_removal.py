"""Redundant-wire removal for AND/OR networks — SIS ``red_removal``.

The paper runs ``red_removal`` after every SIS script "to make fair
comparisons"; this is the sislite counterpart.  A gate input is redundant
when its stuck-at fault is untestable; we decide that exactly, per
output cone, with BDDs: wire ``w`` into gate ``g`` is stuck-at-``v``
redundant iff replacing it by the constant ``v`` leaves every output
function unchanged.  Redundancies are removed one at a time (removing one
can make another testable), smallest cones first, until a fixpoint.

Cones whose BDDs exceed the node budget are left untouched — the same
graceful degradation SIS shows on its biggest inputs.
"""

from __future__ import annotations

from repro.bdd.manager import BddManager
from repro.errors import ReproError
from repro.network.netlist import GateType, Network

_BDD_BUDGET = 100_000
_MAX_PASSES = 40


def remove_redundant_wires(net: Network) -> Network:
    """Return a network with stuck-at-redundant fanins replaced by
    constants (and the resulting constants propagated by strash)."""
    current = net
    for _ in range(_MAX_PASSES):
        replacement = _find_one_redundancy(current)
        if replacement is None:
            return current
        current = _rebuild_with(current, *replacement)
    return current


def _output_bdds(net: Network, manager: BddManager,
                 forced: tuple[int, int, int] | None) -> list[int] | None:
    """BDDs of all outputs; ``forced`` = (gate, pin, value) overrides one
    wire.  Returns None when a gate type is outside AND/OR/NOT land."""
    values: dict[int, int] = {0: 0, 1: 1}
    for node in net.live_nodes():
        gate = net.type_of(node)
        if gate is GateType.PI:
            values[node] = manager.var(net.pi_index(node))
            continue
        if gate in (GateType.CONST0, GateType.CONST1):
            continue
        fanins = net.fanin(node)
        inputs = []
        for pin, child in enumerate(fanins):
            if forced is not None and forced[0] == node and forced[1] == pin:
                inputs.append(forced[2])
            else:
                inputs.append(values[child])
        if gate is GateType.NOT:
            values[node] = manager.not_(inputs[0])
        elif gate is GateType.AND:
            values[node] = manager.and_(inputs[0], inputs[1])
        elif gate is GateType.OR:
            values[node] = manager.or_(inputs[0], inputs[1])
        elif gate is GateType.XOR:
            values[node] = manager.xor_(inputs[0], inputs[1])
        else:  # pragma: no cover - defensive
            return None
    return [values[out] for out in net.outputs]


def _find_one_redundancy(net: Network) -> tuple[int, int, int] | None:
    """(gate, pin, constant) of the first redundant wire, or None."""
    try:
        manager = BddManager(net.num_inputs, node_limit=_BDD_BUDGET)
        golden = _output_bdds(net, manager, None)
        if golden is None:
            return None
        for node in net.live_nodes():
            gate = net.type_of(node)
            if gate not in (GateType.AND, GateType.OR):
                continue
            # Controlling-value faults first: s-a-1 on AND pins, s-a-0 on
            # OR pins delete the wire without constant-propagating the gate.
            friendly = 1 if gate is GateType.AND else 0
            for pin in range(2):
                for value in (friendly, 1 - friendly):
                    candidate = _output_bdds(net, manager, (node, pin, value))
                    if candidate == golden:
                        return (node, pin, value)
    except ReproError:
        return None
    return None


def _rebuild_with(net: Network, gate: int, pin: int, value: int) -> Network:
    """Copy the network with one wire tied to a constant (strash folds)."""
    rebuilt = Network(net.num_inputs, name=net.name,
                      input_names=net.input_names)
    mapping: dict[int, int] = {0: rebuilt.const0, 1: rebuilt.const1}
    for node in net.live_nodes():
        kind = net.type_of(node)
        if kind is GateType.PI:
            mapping[node] = rebuilt.pi(net.pi_index(node))
            continue
        if kind in (GateType.CONST0, GateType.CONST1):
            continue
        fanins = []
        for position, child in enumerate(net.fanin(node)):
            if node == gate and position == pin:
                fanins.append(rebuilt.const1 if value else rebuilt.const0)
            else:
                fanins.append(mapping[child])
        if kind is GateType.NOT:
            mapping[node] = rebuilt.add_not(fanins[0])
        elif kind is GateType.AND:
            mapping[node] = rebuilt.add_and(fanins[0], fanins[1])
        elif kind is GateType.OR:
            mapping[node] = rebuilt.add_or(fanins[0], fanins[1])
        else:
            mapping[node] = rebuilt.add_xor(fanins[0], fanins[1])
    rebuilt.set_outputs(
        [mapping[out] for out in net.outputs], net.output_names
    )
    return rebuilt
