"""Algebraic factoring of SOP covers — SIS ``good_factor``/``quick_factor``.

Recursive divide-and-factor: pick a divisor (the best kernel when the
cover is small enough, otherwise the most frequent literal), divide, and
factor quotient, divisor and remainder.  Produces AND/OR/NOT expression
trees over literal ids (translated to :mod:`repro.expr` literals at the
end); no XOR is ever introduced — that is precisely the conventional-flow
behaviour the paper contrasts with.
"""

from __future__ import annotations

from repro.expr import expression as ex
from repro.sislite.divisors import (
    CubeSet,
    divide,
    is_cube_free,
    kernels,
    literal_count,
    literal_histogram,
    lit_negated,
    lit_var,
)

_KERNEL_COVER_LIMIT = 80


def factor_cover(cubes: list[CubeSet], use_kernels: bool = True) -> ex.Expr:
    """Factored expression for an OR-of-cubes function."""
    cubes = _dedupe(cubes)
    if not cubes:
        return ex.FALSE
    if len(cubes) == 1:
        return _cube_to_expr(cubes[0])
    divisor = None
    if use_kernels and len(cubes) <= _KERNEL_COVER_LIMIT:
        divisor = _best_kernel(cubes)
    if divisor is None:
        divisor = _most_common_literal_divisor(cubes)
    if divisor is None:
        return ex.or_([_cube_to_expr(c) for c in cubes])
    quotient, remainder = divide(cubes, divisor)
    if not quotient:
        return ex.or_([_cube_to_expr(c) for c in cubes])
    product = ex.and_(
        [factor_cover(quotient, use_kernels), factor_cover(divisor, use_kernels)]
    )
    if not remainder:
        return product
    return ex.or_([product, factor_cover(remainder, use_kernels)])


def _dedupe(cubes: list[CubeSet]) -> list[CubeSet]:
    seen: set[CubeSet] = set()
    out = []
    for cube in cubes:
        if cube not in seen:
            # Drop cubes covered by an already-kept smaller cube.
            if any(kept <= cube for kept in seen):
                continue
            seen.add(cube)
            out.append(cube)
    return out


def _cube_to_expr(cube: CubeSet) -> ex.Expr:
    if not cube:
        return ex.TRUE
    return ex.and_(
        [ex.Lit(lit_var(lit), lit_negated(lit)) for lit in sorted(cube)]
    )


def _best_kernel(cubes: list[CubeSet]) -> list[CubeSet] | None:
    """Kernel with the best literal savings as a divisor, if any helps."""
    best: list[CubeSet] | None = None
    best_value = 0
    for _, kernel in kernels(cubes):
        if len(kernel) < 2 or frozenset(kernel) == frozenset(cubes):
            continue
        quotient, _ = divide(cubes, kernel)
        if len(quotient) < 1:
            continue
        # Literals saved: each extra use of the kernel body replaces
        # |kernel| cube copies with one quotient cube reference.
        value = (len(quotient) - 1) * literal_count(kernel) - len(quotient)
        if value > best_value:
            best_value = value
            best = kernel
    return best


def _most_common_literal_divisor(cubes: list[CubeSet]) -> list[CubeSet] | None:
    counts = literal_histogram(cubes)
    if not counts:
        return None
    lit, count = max(counts.items(), key=lambda kv: (kv[1], -kv[0]))
    if count < 2:
        return None
    return [frozenset({lit})]


def cover_literal_count(cubes: list[CubeSet]) -> int:
    """Flat SOP literal count (diagnostic)."""
    return literal_count(cubes)


def is_factored_trivially(cubes: list[CubeSet]) -> bool:
    return not is_cube_free(cubes)
