"""Cells and cell libraries.

A cell is a named single-output function with an area and one or more
*pattern trees* over the subject-graph basis (2-input NAND and INV).
Pattern trees are nested tuples::

    ("nand", p, q) | ("inv", p) | int   # int = input leaf index

Leaf indices number the cell's formal inputs; a leaf may appear only once
per pattern (tree matching).  Multiple patterns per cell cover the
different NAND/INV decompositions of the same function (e.g. XNOR both as
its own 4-NAND form and as INV-of-XOR).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LibraryError

Pattern = tuple | int


def pattern_inputs(pattern: Pattern) -> int:
    """Number of distinct leaves in a pattern."""
    leaves: set[int] = set()

    def walk(node: Pattern) -> None:
        if isinstance(node, int):
            leaves.add(node)
            return
        for child in node[1:]:
            walk(child)

    walk(pattern)
    return len(leaves)


@dataclass(frozen=True)
class Cell:
    """One library cell.

    ``literals`` is the literal count of the cell's SOP expression (the
    quantity SIS ``map`` reports as *lits*: an XOR cell ``a·b̄ + ā·b``
    counts 4, a NAND2 counts 2, an inverter 1); it defaults to
    ``num_inputs`` when a library format does not say otherwise.
    """

    name: str
    area: float
    num_inputs: int
    patterns: tuple[Pattern, ...]
    literals: int = 0

    def __post_init__(self) -> None:
        if self.literals <= 0:
            object.__setattr__(self, "literals", self.num_inputs)
        for pattern in self.patterns:
            if pattern_inputs(pattern) != self.num_inputs:
                raise LibraryError(
                    f"cell {self.name}: pattern leaf count != num_inputs"
                )


@dataclass
class CellLibrary:
    """A set of cells; the mapper consults :attr:`cells` directly."""

    name: str
    cells: list[Cell] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [cell.name for cell in self.cells]
        if len(set(names)) != len(names):
            raise LibraryError(f"library {self.name}: duplicate cell names")
        if not any(c.patterns == (("inv", 0),) or ("inv", 0) in c.patterns
                   for c in self.cells):
            raise LibraryError(
                f"library {self.name}: an inverter cell is required"
            )
        if not any(("nand", 0, 1) in c.patterns for c in self.cells):
            raise LibraryError(
                f"library {self.name}: a 2-input NAND cell is required"
            )

    def cell(self, name: str) -> Cell:
        for cell in self.cells:
            if cell.name == name:
                return cell
        raise KeyError(name)
