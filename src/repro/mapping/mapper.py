"""Dynamic-programming tree mapping over the subject graph (DAGON style).

Every live subject node gets a best (cell, leaf-signals) cover by trying
each library pattern rooted there; internal pattern nodes must be
single-fanout (tree condition), leaves recurse into already-solved
subproblems.  Multi-fanout nodes and outputs become cell boundaries.  The
objective is total cell area, the paper's optimization target.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LibraryError
from repro.mapping.cell import Cell, CellLibrary, Pattern
from repro.mapping.subject import C0, C1, INV, NAND, PI, SubjectGraph, subject_graph
from repro.network.netlist import Network
from repro.obs.spans import span as obs_span


@dataclass
class MappedCell:
    """One cell instance in the mapped netlist."""

    cell: Cell
    root: int
    inputs: tuple[int, ...]  # subject-graph signal ids, pattern-leaf order


@dataclass
class MappedNetwork:
    """Result of technology mapping."""

    library: CellLibrary
    cells: list[MappedCell] = field(default_factory=list)
    outputs: list[int] = field(default_factory=list)
    graph: "SubjectGraph | None" = None

    @property
    def gate_count(self) -> int:
        return len(self.cells)

    @property
    def literal_count(self) -> int:
        """Post-mapping ``lits`` of Table 2: cell-function literal counts
        summed over instances (an XOR cell counts 4, NAND2 counts 2)."""
        return sum(c.cell.literals for c in self.cells)

    @property
    def pin_count(self) -> int:
        return sum(len(c.inputs) for c in self.cells)

    @property
    def area(self) -> float:
        return sum(c.cell.area for c in self.cells)

    def cell_histogram(self) -> dict[str, int]:
        histogram: dict[str, int] = {}
        for instance in self.cells:
            histogram[instance.cell.name] = histogram.get(instance.cell.name, 0) + 1
        return histogram


def map_network(net: Network, library: CellLibrary) -> MappedNetwork:
    """Map a logic network onto ``library`` for minimum area."""
    with obs_span("tech-map", category="algo") as node:
        graph = subject_graph(net)
        mapped = _map_subject(graph, library)
        if node is not None:
            node.set(library=library.name,
                     subject_nodes=len(graph.live_nodes()),
                     cells=mapped.gate_count, area=mapped.area)
        return mapped


def _map_subject(graph: SubjectGraph, library: CellLibrary) -> MappedNetwork:
    live = graph.live_nodes()
    fanout = graph.fanout_counts()
    best_cost: dict[int, float] = {}
    best_match: dict[int, tuple[Cell, tuple[int, ...]] | None] = {}

    for node in live:
        kind = graph.kinds[node]
        if kind in (PI, C0, C1):
            best_cost[node] = 0.0
            best_match[node] = None
            continue
        choice: tuple[Cell, tuple[int, ...]] | None = None
        cost = float("inf")
        for cell in library.cells:
            for pattern in cell.patterns:
                bindings = _match(graph, fanout, pattern, node)
                if bindings is None:
                    continue
                leaves = tuple(bindings[i] for i in range(cell.num_inputs))
                candidate = cell.area + sum(
                    best_cost[leaf] for leaf in set(leaves)
                )
                if candidate < cost:
                    cost = candidate
                    choice = (cell, leaves)
        if choice is None:
            raise LibraryError(
                f"no cell covers subject node {node} ({kind})"
            )
        best_cost[node] = cost
        best_match[node] = choice

    mapped = MappedNetwork(library=library, outputs=list(graph.outputs),
                           graph=graph)
    emitted: set[int] = set()

    def emit(node: int) -> None:
        if node in emitted or best_match.get(node) is None:
            return
        emitted.add(node)
        cell, leaves = best_match[node]
        mapped.cells.append(MappedCell(cell, node, leaves))
        for leaf in leaves:
            emit(leaf)

    for root in graph.outputs:
        emit(root)
    return mapped


def _match(
    graph: SubjectGraph,
    fanout: dict[int, int],
    pattern: Pattern,
    node: int,
) -> dict[int, int] | None:
    """Match ``pattern`` rooted at ``node``; returns leaf bindings or None."""
    bindings: dict[int, int] = {}

    def walk(p: Pattern, n: int, is_root: bool) -> bool:
        if isinstance(p, int):
            bound = bindings.get(p)
            if bound is None:
                bindings[p] = n
                return True
            return bound == n
        if not is_root and fanout.get(n, 0) > 1:
            return False  # internal pattern nodes must be tree edges
        kind = p[0]
        if kind == "inv":
            if graph.kinds[n] != INV:
                return False
            return walk(p[1], graph.fanins[n][0], False)
        if kind == "nand":
            if graph.kinds[n] != NAND:
                return False
            a, b = graph.fanins[n]
            checkpoint = dict(bindings)
            if walk(p[1], a, False) and walk(p[2], b, False):
                return True
            bindings.clear()
            bindings.update(checkpoint)
            return walk(p[1], b, False) and walk(p[2], a, False)
        raise ValueError(f"bad pattern node {p!r}")

    if walk(pattern, node, True):
        return bindings
    return None
