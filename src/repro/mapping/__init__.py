"""Technology mapping — the stand-in for SIS ``map`` with mcnc.genlib.

Tree-based dynamic-programming mapping (DAGON style): the network is
decomposed into a NAND2/INV subject graph, broken into trees at
multi-fanout points, and each tree is covered by minimum-area cell
patterns from the library.  The built-in :data:`~repro.mapping.mcnc.MCNC_LITE`
library carries the cell classes the paper lists: 2-input XOR/XNOR,
2-input AND/OR, NAND/NOR up to four inputs, and AOI/OAI complex cells.
"""

from repro.mapping.cell import Cell, CellLibrary
from repro.mapping.genlib import parse_genlib
from repro.mapping.mcnc import MCNC_LITE, mcnc_lite_library
from repro.mapping.mapper import MappedNetwork, map_network

__all__ = [
    "Cell",
    "CellLibrary",
    "MCNC_LITE",
    "MappedNetwork",
    "map_network",
    "mcnc_lite_library",
    "parse_genlib",
]
