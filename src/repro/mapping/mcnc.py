"""The built-in ``mcnc_lite`` cell library.

Table 2 maps with ``mcnc.genlib``, described as having (1) 2-input
XOR/XNOR, (2) 2-input AND/OR, (3) NAND/NOR up to four inputs and (4) four
complex cells such as AOI22.  This library reproduces exactly those cell
classes with mcnc-like relative areas (the classic λ²-flavoured numbers:
inverter 928, 2-input NAND 1392, …).

XOR and XNOR get an extra hand-written pattern each: the canonical
NAND/INV form of the *complemented* cell wrapped in an inverter, so a
``NOT(XOR(a,b))`` subject shape still maps onto one XNOR cell (and vice
versa) instead of five gates.
"""

from __future__ import annotations

from repro.mapping.cell import Cell, CellLibrary
from repro.mapping.genlib import parse_genlib

MCNC_LITE = """\
# mcnc_lite - the cell classes of mcnc.genlib used by the paper
GATE inv    928  Y = !A;
GATE nand2  1392 Y = !(A*B);
GATE nand3  1856 Y = !(A*B*C);
GATE nand4  2320 Y = !(A*B*C*D);
GATE nor2   1392 Y = !(A+B);
GATE nor3   1856 Y = !(A+B+C);
GATE nor4   2320 Y = !(A+B+C+D);
GATE and2   1856 Y = A*B;
GATE or2    1856 Y = A+B;
GATE xor2   2320 Y = A*!B + !A*B;
GATE xnor2  2320 Y = A*B + !A*!B;
GATE aoi21  1856 Y = !(A*B + C);
GATE aoi22  2320 Y = !(A*B + C*D);
GATE oai21  1856 Y = !((A+B) * C);
GATE oai22  2320 Y = !((A+B) * (C+D));
"""

# XOR subject form: NAND(NAND(a, INV b), NAND(INV a, b))
_XOR_PATTERN = ("nand", ("nand", 0, ("inv", 1)), ("nand", ("inv", 0), 1))
# XNOR subject form: NAND(NAND(a, b), NAND(INV a, INV b))
_XNOR_PATTERN = ("nand", ("nand", 0, 1), ("nand", ("inv", 0), ("inv", 1)))


def mcnc_lite_library() -> CellLibrary:
    """Parse :data:`MCNC_LITE` and augment the XOR/XNOR pattern sets."""
    library = parse_genlib(MCNC_LITE, name="mcnc_lite")
    cells = []
    for cell in library.cells:
        if cell.name == "xor2":
            patterns = cell.patterns + (("inv", _XNOR_PATTERN),)
            cell = Cell(cell.name, cell.area, cell.num_inputs, patterns,
                        literals=cell.literals)
        elif cell.name == "xnor2":
            patterns = cell.patterns + (("inv", _XOR_PATTERN),)
            cell = Cell(cell.name, cell.area, cell.num_inputs, patterns,
                        literals=cell.literals)
        cells.append(cell)
    return CellLibrary("mcnc_lite", cells)
