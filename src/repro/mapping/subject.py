"""Subject-graph construction: networks decomposed into NAND2 + INV.

The canonical expansions (matching the genlib pattern converter and the
balanced gate trees built by :class:`~repro.network.netlist.Network`):

* ``AND(a,b) = INV(NAND(a,b))``
* ``OR(a,b)  = NAND(INV(a), INV(b))``
* ``XOR(a,b) = NAND(NAND(a, INV(b)), NAND(INV(a), b))``
* ``NOT(a)   = INV(a)``

The subject graph is structurally hashed, so shared logic stays shared and
inverter pairs cancel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.network.netlist import GateType, Network

PI = "pi"
INV = "inv"
NAND = "nand"
C0 = "c0"
C1 = "c1"


@dataclass
class SubjectGraph:
    """NAND2/INV DAG with structural hashing."""

    num_inputs: int
    kinds: list[str] = field(default_factory=list)
    fanins: list[tuple[int, ...]] = field(default_factory=list)
    outputs: list[int] = field(default_factory=list)
    _hash: dict[tuple, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.kinds:
            self.kinds = [C0, C1] + [PI] * self.num_inputs
            self.fanins = [()] * (2 + self.num_inputs)

    @property
    def const0(self) -> int:
        return 0

    @property
    def const1(self) -> int:
        return 1

    def pi(self, index: int) -> int:
        return 2 + index

    def inv(self, a: int) -> int:
        if self.kinds[a] == INV:
            return self.fanins[a][0]
        if self.kinds[a] == C0:
            return self.const1
        if self.kinds[a] == C1:
            return self.const0
        return self._node(INV, (a,))

    def nand(self, a: int, b: int) -> int:
        if self.kinds[a] == C0 or self.kinds[b] == C0:
            return self.const1
        if self.kinds[a] == C1:
            return self.inv(b)
        if self.kinds[b] == C1:
            return self.inv(a)
        if a == b:
            return self.inv(a)
        if a > b:
            a, b = b, a
        return self._node(NAND, (a, b))

    def _node(self, kind: str, fanins: tuple[int, ...]) -> int:
        key = (kind, fanins)
        node = self._hash.get(key)
        if node is None:
            node = len(self.kinds)
            self.kinds.append(kind)
            self.fanins.append(fanins)
            self._hash[key] = node
        return node

    def live_nodes(self) -> list[int]:
        seen: set[int] = set()
        order: list[int] = []
        for root in self.outputs:
            stack = [(root, False)]
            while stack:
                node, expanded = stack.pop()
                if node in seen:
                    continue
                if expanded:
                    seen.add(node)
                    order.append(node)
                    continue
                stack.append((node, True))
                for child in self.fanins[node]:
                    if child not in seen:
                        stack.append((child, False))
        return order

    def fanout_counts(self) -> dict[int, int]:
        live = self.live_nodes()
        live_set = set(live)
        counts = {node: 0 for node in live}
        for node in live:
            for child in self.fanins[node]:
                if child in live_set:
                    counts[child] += 1
        for root in self.outputs:
            counts[root] = counts.get(root, 0) + 1
        return counts


def subject_graph(net: Network) -> SubjectGraph:
    """Expand a logic network into its NAND2/INV subject graph."""
    graph = SubjectGraph(net.num_inputs)
    values: dict[int, int] = {0: graph.const0, 1: graph.const1}
    for node in net.live_nodes():
        gate = net.type_of(node)
        if gate is GateType.PI:
            values[node] = graph.pi(net.pi_index(node))
        elif gate is GateType.NOT:
            values[node] = graph.inv(values[net.fanin(node)[0]])
        elif gate is GateType.AND:
            a, b = (values[f] for f in net.fanin(node))
            values[node] = graph.inv(graph.nand(a, b))
        elif gate is GateType.OR:
            a, b = (values[f] for f in net.fanin(node))
            values[node] = graph.nand(graph.inv(a), graph.inv(b))
        elif gate is GateType.XOR:
            a, b = (values[f] for f in net.fanin(node))
            values[node] = graph.nand(
                graph.nand(a, graph.inv(b)),
                graph.nand(graph.inv(a), b),
            )
    graph.outputs = [values[out] for out in net.outputs]
    return graph
