"""Parsing Berkeley genlib cell descriptions into pattern trees.

Supports the common genlib subset::

    GATE nand2 1392 Y = !(A*B); PIN * INV 1 999 1 .2 1 .2

Only the gate name, area and expression are used (pin timing is ignored —
we map for area like the paper).  The expression grammar is
``! * + ( )`` over single identifiers, with ``*`` optionally implicit by
juxtaposition NOT supported (SIS genlibs always write the ``*``).

The expression is converted into a canonical NAND/INV pattern tree with
**balanced** binarization of n-ary AND/OR — matching how
:mod:`repro.network.netlist` builds gate trees, so canonical patterns line
up with subject graphs.  Cells whose function needs more than one useful
decomposition (XOR/XNOR and wide NAND/NOR) can get extra hand patterns via
:func:`repro.mapping.mcnc.mcnc_lite_library`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ParseError
from repro.mapping.cell import Cell, CellLibrary, Pattern

_TOKEN = re.compile(r"\s*([A-Za-z_][A-Za-z0-9_]*|[!*+()])")


@dataclass
class _Parser:
    text: str
    pos: int = 0

    def peek(self) -> str | None:
        match = _TOKEN.match(self.text, self.pos)
        return match.group(1) if match else None

    def take(self) -> str:
        match = _TOKEN.match(self.text, self.pos)
        if not match:
            raise ParseError(f"bad genlib expression near {self.text[self.pos:]!r}")
        self.pos = match.end()
        return match.group(1)

    def expect(self, token: str) -> None:
        got = self.take()
        if got != token:
            raise ParseError(f"expected {token!r}, got {got!r}")


# Internal expression AST: ("and", [..]) ("or", [..]) ("not", x) ("var", name)


def _parse_or(parser: _Parser):
    terms = [_parse_and(parser)]
    while parser.peek() == "+":
        parser.take()
        terms.append(_parse_and(parser))
    return ("or", terms) if len(terms) > 1 else terms[0]


def _parse_and(parser: _Parser):
    factors = [_parse_atom(parser)]
    while parser.peek() == "*":
        parser.take()
        factors.append(_parse_atom(parser))
    return ("and", factors) if len(factors) > 1 else factors[0]


def _parse_atom(parser: _Parser):
    token = parser.take()
    if token == "!":
        return ("not", _parse_atom(parser))
    if token == "(":
        inner = _parse_or(parser)
        parser.expect(")")
        return inner
    if token in ("*", "+", ")"):
        raise ParseError(f"unexpected {token!r}")
    return ("var", token)


def expression_to_pattern(text: str) -> tuple[Pattern, list[str]]:
    """Parse a genlib output expression into (pattern, input names)."""
    parser = _Parser(text)
    ast = _parse_or(parser)
    names: list[str] = []

    def index_of(name: str) -> int:
        if name not in names:
            names.append(name)
        return names.index(name)

    def convert(node, inverted: bool) -> Pattern:
        kind = node[0]
        if kind == "var":
            leaf: Pattern = index_of(node[1])
            return ("inv", leaf) if inverted else leaf
        if kind == "not":
            return convert(node[1], not inverted)
        parts = node[1]
        if kind == "and":
            # AND = INV(NAND); NAND when inverted.
            nand = _balanced_nand(
                [convert(p, False) for p in parts]
            )
            return nand if inverted else ("inv", nand)
        # OR = NAND of inverted inputs; NOR when inverted.
        nand = _balanced_nand([convert(p, True) for p in parts])
        return ("inv", nand) if inverted else nand


    def _balanced_nand(parts: list[Pattern]) -> Pattern:
        # n-ary AND tree: balanced pairing, INV between levels, final NAND.
        while len(parts) > 2:
            merged = []
            for i in range(0, len(parts) - 1, 2):
                merged.append(("inv", ("nand", parts[i], parts[i + 1])))
            if len(parts) % 2:
                merged.append(parts[-1])
            parts = merged
        if len(parts) == 1:
            return parts[0]
        return ("nand", parts[0], parts[1])

    pattern = convert(ast, False)
    return pattern, names


def _literal_occurrences(expression: str) -> int:
    """Number of literal occurrences in a genlib expression."""
    return len(re.findall(r"[A-Za-z_][A-Za-z0-9_]*", expression))


def parse_genlib(text: str, name: str = "genlib") -> CellLibrary:
    """Parse genlib text into a :class:`CellLibrary`."""
    cells = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line or not line.upper().startswith("GATE"):
            continue
        match = re.match(
            r"GATE\s+(\S+)\s+([\d.]+)\s+(\w+)\s*=\s*([^;]+);", line
        )
        if not match:
            raise ParseError(f"bad GATE line: {line!r}")
        cell_name, area, _out, expression = match.groups()
        if expression.strip() in ("0", "1", "CONST0", "CONST1"):
            continue  # constant cells are not needed; constants fold away
        pattern, names = expression_to_pattern(expression)
        cells.append(
            Cell(cell_name, float(area), len(names), (pattern,),
                 literals=_literal_occurrences(expression))
        )
    return CellLibrary(name, cells)
