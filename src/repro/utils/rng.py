"""Deterministic random number generation.

Every stochastic piece of the library (random simulation vectors, seeded
synthetic benchmark circuits) draws from generators produced here so that
results are reproducible run to run and machine to machine.
"""

from __future__ import annotations

import hashlib

import numpy as np


def seed_from_name(name: str, salt: int = 0) -> int:
    """Derive a stable 63-bit seed from a string name.

    Python's ``hash`` is randomized per process; we hash with SHA-256 so
    seeded benchmark circuits are identical across runs and machines.
    """
    digest = hashlib.sha256(f"{name}:{salt}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") >> 1


def deterministic_rng(name: str, salt: int = 0) -> np.random.Generator:
    """A numpy Generator seeded stably from ``name`` and ``salt``."""
    return np.random.default_rng(seed_from_name(name, salt))
