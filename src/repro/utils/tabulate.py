"""Minimal fixed-width text-table formatting for harness reports."""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    aligns: Sequence[str] | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table.

    ``aligns`` is a per-column sequence of ``"l"`` or ``"r"``; numeric-looking
    columns default to right alignment.
    """
    cells = [[_fmt(value) for value in row] for row in rows]
    ncols = len(headers)
    for row in cells:
        if len(row) != ncols:
            raise ValueError("row width does not match header width")
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    if aligns is None:
        aligns = [_default_align(i, cells) for i in range(ncols)]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(ncols)),
    ]
    for row in cells:
        parts = []
        for i, cell in enumerate(row):
            if aligns[i] == "r":
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        lines.append("  ".join(parts))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _default_align(col: int, cells: list[list[str]]) -> str:
    for row in cells:
        text = row[col]
        if text and not _is_numeric(text):
            return "l"
    return "r"


def _is_numeric(text: str) -> bool:
    stripped = text.lstrip("+-")
    return stripped.replace(".", "", 1).replace("%", "", 1).isdigit()
