"""Bit-mask helpers used across cube, spectrum and pattern code.

Variables are numbered ``0 .. n-1`` and variable ``i`` corresponds to bit
``1 << i`` in every mask in the library.  Keeping one convention everywhere
lets cubes, truth-table indices and primary-input patterns share masks
without translation.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator


def popcount(mask: int) -> int:
    """Number of set bits in ``mask``."""
    return mask.bit_count()


def parity(mask: int) -> int:
    """Parity (0/1) of the number of set bits in ``mask``."""
    return mask.bit_count() & 1


def bit_indices(mask: int) -> Iterator[int]:
    """Yield the indices of set bits in ``mask``, lowest first."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def mask_of(indices: Iterable[int]) -> int:
    """Build a mask with the given bit indices set."""
    mask = 0
    for index in indices:
        mask |= 1 << index
    return mask


def iter_subsets(mask: int) -> Iterator[int]:
    """Yield every subset of ``mask`` (including 0 and ``mask`` itself).

    Uses the standard descending-subset enumeration trick; the number of
    results is ``2**popcount(mask)``, so callers must keep supports small.
    """
    subset = mask
    while True:
        yield subset
        if subset == 0:
            return
        subset = (subset - 1) & mask


def lowest_bit_index(mask: int) -> int:
    """Index of the lowest set bit; ``mask`` must be non-zero."""
    if mask == 0:
        raise ValueError("mask must be non-zero")
    return (mask & -mask).bit_length() - 1
