"""Shared low-level helpers: bit manipulation, deterministic RNG, tables."""

from repro.utils.bitops import (
    bit_indices,
    iter_subsets,
    mask_of,
    parity,
    popcount,
)
from repro.utils.rng import deterministic_rng
from repro.utils.tabulate import format_table

__all__ = [
    "bit_indices",
    "deterministic_rng",
    "format_table",
    "iter_subsets",
    "mask_of",
    "parity",
    "popcount",
]
