"""Helpers shared by the benchmark circuit generators."""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.expr import expression as ex
from repro.spec import CircuitSpec, OutputSpec
from repro.truth.table import TruthTable


def table_output(
    name: str, support: Sequence[int], fn: Callable[[int], int]
) -> OutputSpec:
    """An output tabulated from ``fn(local_minterm)`` over its support."""
    table = TruthTable.from_function(len(support), fn)
    return OutputSpec(name=name, support=tuple(support), table=table)


def expr_output(name: str, support: Sequence[int], expr: ex.Expr) -> OutputSpec:
    """An output described by a (possibly shared/multilevel) expression."""
    return OutputSpec(name=name, support=tuple(support), expr=expr)


def field(minterm: int, offset: int, width: int) -> int:
    """Extract ``width`` bits of a local minterm starting at ``offset``."""
    return (minterm >> offset) & ((1 << width) - 1)


def bit(minterm: int, index: int) -> int:
    return (minterm >> index) & 1


def popcount(value: int) -> int:
    return value.bit_count()


def word_outputs(
    prefix: str,
    support: Sequence[int],
    word_fn: Callable[[int], int],
    out_bits: int,
) -> list[OutputSpec]:
    """One tabulated output per bit of ``word_fn(local_minterm)``."""
    outputs = []
    for j in range(out_bits):
        outputs.append(
            table_output(
                f"{prefix}{j}",
                support,
                lambda m, j=j: (word_fn(m) >> j) & 1,
            )
        )
    return outputs


def spec(
    name: str,
    num_inputs: int,
    outputs: list[OutputSpec],
    *,
    arithmetic: bool = False,
    description: str = "",
    substitution: str | None = None,
) -> CircuitSpec:
    return CircuitSpec(
        name=name,
        num_inputs=num_inputs,
        outputs=outputs,
        is_arithmetic=arithmetic,
        description=description,
        substitution=substitution,
    )
