"""Name → specification registry for the benchmark suite."""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import UnknownCircuitError
from repro.spec import CircuitSpec

_REGISTRY: dict[str, Callable[[], CircuitSpec]] = {}
_CACHE: dict[str, CircuitSpec] = {}
_EXTENSIONS: set[str] = set()


def register(
    name: str, extension: bool = False
) -> Callable[[Callable[[], CircuitSpec]], Callable[[], CircuitSpec]]:
    """Decorator: register a zero-argument spec factory under ``name``.

    ``extension=True`` marks circuits beyond the paper's Table 2 set
    (e.g. the coding-theory demonstrators); they are excluded from
    :func:`all_names` (and hence from the Table 2 harness) but available
    through :func:`get` and :func:`extension_names`.
    """

    def wrap(factory: Callable[[], CircuitSpec]) -> Callable[[], CircuitSpec]:
        if name in _REGISTRY:
            raise ValueError(f"duplicate circuit name {name!r}")
        _REGISTRY[name] = factory
        if extension:
            _EXTENSIONS.add(name)
        return factory

    return wrap


def get(name: str) -> CircuitSpec:
    """The specification for ``name`` (cached; specs are treated read-only)."""
    if name not in _REGISTRY:
        raise UnknownCircuitError(name)
    if name not in _CACHE:
        spec = _REGISTRY[name]()
        if spec.name != name:
            raise ValueError(f"factory for {name!r} produced {spec.name!r}")
        _CACHE[name] = spec
    return _CACHE[name]


def all_names() -> list[str]:
    """The Table 2 circuits, alphabetical (extensions excluded)."""
    return sorted(name for name in _REGISTRY if name not in _EXTENSIONS)


def extension_names() -> list[str]:
    """Circuits beyond the paper's benchmark set."""
    return sorted(_EXTENSIONS)


def arithmetic_names() -> list[str]:
    """The circuits counted into the paper's "Total arith." row."""
    return [name for name in all_names() if get(name).is_arithmetic]
