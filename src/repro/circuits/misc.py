"""Structured non-random benchmark circuits: t481, comparators, glue."""

from __future__ import annotations

from repro.circuits.builders import bit, expr_output, field, spec, table_output
from repro.circuits.registry import register
from repro.expr import expression as ex
from repro.spec import CircuitSpec


@register("t481")
def t481() -> CircuitSpec:
    """The 16-input single-output function of the paper's Example 1.

    The paper prints the synthesized equation explicitly; we use it as the
    ground-truth definition:

        t481 = (v̄0·v1 ⊕ v2·v̄3) · (v̄4·v5 ⊕ (v̄6 + v7))
             ⊕ ((v8 + v̄9) ⊕ v10·v̄11) · (v̄12·v13 ⊕ v14·v̄15)
    """
    support = tuple(range(16))

    def fn(m: int) -> int:
        v = [bit(m, i) for i in range(16)]
        left = ((1 - v[0]) & v[1]) ^ (v[2] & (1 - v[3]))
        left &= ((1 - v[4]) & v[5]) ^ ((1 - v[6]) | v[7])
        right = (v[8] | (1 - v[9])) ^ (v[10] & (1 - v[11]))
        right &= ((1 - v[12]) & v[13]) ^ (v[14] & (1 - v[15]))
        return left ^ right

    out = table_output("t481", support, fn)
    return spec("t481", 16, [out], arithmetic=True,
                description="481-prime-cube function; 16 FPRM cubes")


@register("bcd-div3")
def bcd_div3() -> CircuitSpec:
    """BCD digit divided by 3: 2-bit quotient and 2-bit remainder."""
    support = tuple(range(4))

    def value(m: int) -> int:
        if m > 9:
            return 0
        return (m // 3) | ((m % 3) << 2)

    outputs = [
        table_output(f"q{j}", support, lambda m, j=j: (value(m) >> j) & 1)
        for j in range(2)
    ] + [
        table_output(f"r{j}", support, lambda m, j=j: (value(m) >> (2 + j)) & 1)
        for j in range(2)
    ]
    return spec("bcd-div3", 4, outputs, arithmetic=True,
                description="BCD digit / 3 (quotient, remainder)",
                substitution="don't-care inputs 10-15 fixed to output 0 "
                "(the MCNC PLA leaves them unspecified).")


@register("cm85a")
def cm85a() -> CircuitSpec:
    """Cascadable 4-bit magnitude comparator (11 inputs, 3 outputs)."""
    support = tuple(range(11))

    def gt(m: int) -> int:
        a, b = field(m, 0, 4), field(m, 4, 4)
        return int(a > b or (a == b and bit(m, 8)))

    def lt(m: int) -> int:
        a, b = field(m, 0, 4), field(m, 4, 4)
        return int(a < b or (a == b and bit(m, 9)))

    def eq(m: int) -> int:
        a, b = field(m, 0, 4), field(m, 4, 4)
        return int(a == b and bit(m, 10))

    outputs = [
        table_output("gt", support, gt),
        table_output("lt", support, lt),
        table_output("eq", support, eq),
    ]
    return spec("cm85a", 11, outputs, arithmetic=True,
                description="4-bit comparator with cascade inputs",
                substitution="MCNC cm85a is a comparator cell; regenerated "
                "as the standard cascadable magnitude comparator.")


@register("cmb")
def cmb() -> CircuitSpec:
    """Address-match / enable glue (16 inputs, 4 outputs)."""
    a12 = tuple(range(12))
    e4 = tuple(range(12, 16))
    outputs = [
        table_output("match", a12, lambda m: int(m == (1 << 12) - 1)),
        table_output("any_en", e4, lambda m: int(m != 0)),
        table_output(
            "sel", tuple(range(16)),
            lambda m: int(field(m, 0, 12) == (1 << 12) - 1
                          and field(m, 12, 4) != 0),
        ),
        table_output("none", e4, lambda m: int(m == 0)),
    ]
    return spec("cmb", 16, outputs,
                description="wide AND address match with enables",
                substitution="exact MCNC cmb function undocumented; "
                "regenerated as wide-AND/OR address-match glue of the "
                "published I/O shape.")


@register("shift")
def shift() -> CircuitSpec:
    """16-bit universal shift-register slice (19 inputs, 16 outputs).

    Inputs: data d0..d15 (0..15), mode bits c0 c1 (16, 17), serial input
    (18).  Modes: 00 hold, 01 shift left (serial enters bit 0), 10 shift
    right (serial enters bit 15), 11 clear — the 74194-style combinational
    next-state function.
    """
    outputs = []
    for i in range(16):
        left_src = i - 1 if i > 0 else 18  # serial input fills the edge
        right_src = i + 1 if i < 15 else 18
        support = tuple(sorted({i, left_src, right_src})) + (16, 17)
        local = {var: j for j, var in enumerate(sorted({i, left_src, right_src}))}
        c0 = ex.Lit(len(local))
        c1 = ex.Lit(len(local) + 1)
        hold = ex.and_([ex.not_(c0), ex.not_(c1), ex.Lit(local[i])])
        left = ex.and_([c0, ex.not_(c1), ex.Lit(local[left_src])])
        right = ex.and_([ex.not_(c0), c1, ex.Lit(local[right_src])])
        outputs.append(expr_output(f"o{i}", support,
                                   ex.or_([hold, left, right])))
    return spec("shift", 19, outputs,
                description="16-bit universal shift-register slice",
                substitution="exact MCNC shift function undocumented; "
                "regenerated as a 74194-style hold/shift-left/shift-right/"
                "clear slice with the published I/O counts.")


@register("tcon")
def tcon() -> CircuitSpec:
    """Control-gated wire bundle (17 inputs, 16 outputs)."""
    outputs = []
    for i in range(8):
        outputs.append(
            table_output(
                f"a{i}", (2 * i, 16), lambda m: bit(m, 0) & bit(m, 1)
            )
        )
        outputs.append(
            table_output(
                f"b{i}", (2 * i + 1, 16), lambda m: bit(m, 0) | bit(m, 1)
            )
        )
    return spec("tcon", 17, outputs,
                description="AND/OR gated wire bundle",
                substitution="exact MCNC tcon function undocumented; "
                "regenerated as one control line gating 16 wires.")


@register("i3")
def i3() -> CircuitSpec:
    """Six 22-input OR planes over disjoint slices (132 inputs)."""
    outputs = []
    for j in range(6):
        support = tuple(range(22 * j, 22 * (j + 1)))
        outputs.append(
            expr_output(f"o{j}", support,
                        ex.or_([ex.Lit(k) for k in range(22)]))
        )
    return spec("i3", 132, outputs,
                description="wide disjoint OR planes",
                substitution="exact MCNC i3 function undocumented; "
                "regenerated as disjoint 22-input OR planes matching the "
                "published I/O counts and literal scale.")


@register("i4")
def i4() -> CircuitSpec:
    """Six 32-input OR-of-AND-pair planes over disjoint slices."""
    outputs = []
    for j in range(6):
        support = tuple(range(32 * j, 32 * (j + 1)))
        pairs = [
            ex.and_([ex.Lit(2 * k), ex.Lit(2 * k + 1)]) for k in range(16)
        ]
        outputs.append(expr_output(f"o{j}", support, ex.or_(pairs)))
    return spec("i4", 192, outputs,
                description="wide OR of input pairs",
                substitution="exact MCNC i4 function undocumented; "
                "regenerated as disjoint OR-of-AND-pair planes.")


@register("i5")
def i5() -> CircuitSpec:
    """66 two-gate cells sharing one control line (133 inputs)."""
    outputs = []
    for j in range(66):
        support = (2 * j, 2 * j + 1, 132)

        def fn(m: int) -> int:
            return (bit(m, 0) & bit(m, 2)) | bit(m, 1)

        outputs.append(table_output(f"o{j}", support, fn))
    return spec("i5", 133, outputs,
                description="gated buffer array",
                substitution="exact MCNC i5 function undocumented; "
                "regenerated as a 66-cell gated-buffer array (2 gates per "
                "output, matching the published 264 literals).")


@register("pcle")
def pcle() -> CircuitSpec:
    """Parity-check slices with a global enable (19 inputs, 9 outputs)."""
    outputs = []
    for j in range(9):
        support = (2 * j, 2 * j + 1, 18)
        outputs.append(
            table_output(
                f"p{j}", support,
                lambda m: (bit(m, 0) ^ bit(m, 1)) & bit(m, 2),
            )
        )
    return spec("pcle", 19, outputs,
                description="enabled XOR pair checks",
                substitution="MCNC pcle is parity-check logic with enable; "
                "regenerated as nine enabled XOR pair checks.")


@register("pcler8")
def pcler8() -> CircuitSpec:
    """Wider parity-check/enable block (27 inputs, 17 outputs)."""
    outputs = []
    for j in range(13):
        support = (2 * j, 2 * j + 1, 26)
        outputs.append(
            table_output(
                f"p{j}", support,
                lambda m: (bit(m, 0) ^ bit(m, 1)) & bit(m, 2),
            )
        )
    for j in range(4):
        base = 4 * j
        support = (base, base + 1, base + 2, base + 3)
        outputs.append(
            table_output(
                f"q{j}", support,
                lambda m: bit(m, 0) ^ bit(m, 1) ^ (bit(m, 2) & bit(m, 3)),
            )
        )
    return spec("pcler8", 27, outputs,
                description="enabled XOR checks plus mixed parity cells",
                substitution="exact MCNC pcler8 function undocumented; "
                "regenerated as enabled parity-check cells of the "
                "published I/O shape.")
