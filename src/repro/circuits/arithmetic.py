"""Arithmetic benchmark circuits: adders, multipliers, squarers.

These are the circuits the paper's method targets; all are regenerated
from their arithmetic definitions.  Where the exact MCNC bit-ordering or
truncation is undocumented, the closest arithmetic stand-in is used and
recorded in the spec's ``substitution`` field.
"""

from __future__ import annotations

from repro.circuits.builders import expr_output, field, spec, word_outputs
from repro.circuits.registry import register
from repro.expr import expression as ex
from repro.spec import CircuitSpec


@register("z4ml")
def z4ml() -> CircuitSpec:
    """3-bit adder with carry-in and carry-out (paper Example 2).

    Input numbering follows the paper: the addends' consecutive bits are
    ``x2 x3 x1`` and ``x5 x6 x4`` (MSB first) with carry-in ``x7``; we use
    0-based indices, so x1..x7 map to inputs 0..6.  Outputs are
    x24 (carry-out), x25, x26, x27 (MSB to LSB sum).
    """
    support = tuple(range(7))

    def total(m: int) -> int:
        a = ((m >> 0) & 1) | (((m >> 2) & 1) << 1) | (((m >> 1) & 1) << 2)
        b = ((m >> 3) & 1) | (((m >> 5) & 1) << 1) | (((m >> 4) & 1) << 2)
        return a + b + ((m >> 6) & 1)

    outputs = word_outputs("s", support, total, 4)
    # Table order: carry-out first, then sum MSB..LSB.
    ordered = [outputs[3], outputs[2], outputs[1], outputs[0]]
    for out, name in zip(ordered, ("x24", "x25", "x26", "x27")):
        out.name = name
    return spec("z4ml", 7, ordered, arithmetic=True,
                description="3-bit adder with carry-in and carry-out")


def _plain_adder(name: str, nbits: int, description: str,
                 substitution: str | None = None) -> CircuitSpec:
    """a + b over two ``nbits``-bit addends; outputs LSB..MSB then carry."""
    support = tuple(range(2 * nbits))

    def total(m: int) -> int:
        return field(m, 0, nbits) + field(m, nbits, nbits)

    outputs = word_outputs("s", support, total, nbits + 1)
    outputs[-1].name = "cout"
    return spec(name, 2 * nbits, outputs, arithmetic=True,
                description=description, substitution=substitution)


@register("adr4")
def adr4() -> CircuitSpec:
    return _plain_adder("adr4", 4, "4-bit adder")


@register("add6")
def add6() -> CircuitSpec:
    return _plain_adder("add6", 6, "6-bit adder")


@register("radd")
def radd() -> CircuitSpec:
    return _plain_adder(
        "radd", 4, "4-bit adder (redundant-source variant)",
        substitution="MCNC radd is a 4-bit adder from a different source "
        "netlist; regenerated as the plain 4-bit addition function.",
    )


@register("cm82a")
def cm82a() -> CircuitSpec:
    """2-bit adder slice with carry-in (5 inputs, 3 outputs)."""
    support = tuple(range(5))

    def total(m: int) -> int:
        return field(m, 0, 2) + field(m, 2, 2) + ((m >> 4) & 1)

    outputs = word_outputs("s", support, total, 3)
    outputs[-1].name = "cout"
    return spec("cm82a", 5, outputs, arithmetic=True,
                description="2-bit adder with carry-in",
                substitution="MCNC cm82a is a small adder cell; regenerated "
                "as a 2-bit add-with-carry.")


@register("my_adder")
def my_adder() -> CircuitSpec:
    """16-bit ripple-carry adder with carry-in (33 inputs, 17 outputs).

    Specified as multilevel expressions (full-adder chain) — the supports
    are too wide for dense tables, exercising the OFDD-only path in both
    flows, exactly the situation the paper's my_adder row represents.
    """
    nbits = 16

    def slice_support(bits: int) -> tuple[int, ...]:
        # Local order: cin, a0, b0, a1, b1, …  — interleaving the addends
        # keeps the per-output OFDD linear in the word width (one bit of
        # carry state per level), the classical decision-diagram ordering
        # for adders.
        order = [2 * nbits]
        for k in range(bits):
            order += [k, nbits + k]
        return tuple(order)

    def ripple(bits: int) -> tuple[list[ex.Expr], list[ex.Expr], ex.Expr]:
        a = [ex.Lit(1 + 2 * k) for k in range(bits)]
        b = [ex.Lit(2 + 2 * k) for k in range(bits)]
        carry: ex.Expr = ex.Lit(0)
        for k in range(bits - 1):
            carry = ex.or_(
                [ex.and_([a[k], b[k]]),
                 ex.and_([ex.xor_([a[k], b[k]]), carry])]
            )
        return a, b, carry

    outputs = []
    for i in range(nbits):
        a, b, carry = ripple(i + 1)
        outputs.append(
            expr_output(f"s{i}", slice_support(i + 1),
                        ex.xor_([a[i], b[i], carry]))
        )
    a, b, carry = ripple(nbits)
    k = nbits - 1
    full_carry = ex.or_(
        [ex.and_([a[k], b[k]]), ex.and_([ex.xor_([a[k], b[k]]), carry])]
    )
    outputs.append(expr_output("cout", slice_support(nbits), full_carry))
    return spec("my_adder", 2 * nbits + 1, outputs, arithmetic=True,
                description="16-bit ripple-carry adder with carry-in")


@register("mlp4")
def mlp4() -> CircuitSpec:
    """4x4-bit multiplier (8 inputs, 8 outputs)."""
    support = tuple(range(8))

    def product(m: int) -> int:
        return field(m, 0, 4) * field(m, 4, 4)

    return spec("mlp4", 8, word_outputs("p", support, product, 8),
                arithmetic=True, description="4x4 multiplier")


@register("sqr6")
def sqr6() -> CircuitSpec:
    """6-bit squarer (6 inputs, 12 outputs)."""
    support = tuple(range(6))
    return spec(
        "sqr6", 6,
        word_outputs("q", support, lambda m: m * m, 12),
        arithmetic=True, description="6-bit squarer",
    )


@register("squar5")
def squar5() -> CircuitSpec:
    """5-bit squarer, low 8 product bits (5 inputs, 8 outputs)."""
    support = tuple(range(5))
    return spec(
        "squar5", 5,
        word_outputs("q", support, lambda m: (m * m) & 0xFF, 8),
        arithmetic=True, description="5-bit squarer (8 output bits)",
        substitution="MCNC squar5 has 8 outputs; regenerated as the low "
        "8 bits of the 5-bit square.",
    )


@register("5xp1")
def fivexp1() -> CircuitSpec:
    """7-bit 5x+1 (7 inputs, 10 outputs)."""
    support = tuple(range(7))
    return spec(
        "5xp1", 7,
        word_outputs("y", support, lambda m: 5 * m + 1, 10),
        arithmetic=True, description="computes 5*x + 1",
        substitution="MCNC 5xp1 is commonly described as 5x+1; regenerated "
        "from that arithmetic definition.",
    )


@register("f51m")
def f51m() -> CircuitSpec:
    """4-bit multiply-accumulate flavoured function (8 inputs, 8 outputs)."""
    support = tuple(range(8))

    def value(m: int) -> int:
        a = field(m, 0, 4)
        b = field(m, 4, 4)
        return (5 * a + b) & 0xFF

    return spec(
        "f51m", 8, word_outputs("y", support, value, 8),
        arithmetic=True, description="computes 5*a + b over two nibbles",
        substitution="exact MCNC f51m table unavailable offline; "
        "regenerated as the related 5a+b arithmetic function.",
    )


@register("addm4")
def addm4() -> CircuitSpec:
    """Dense add-based function (9 inputs, 8 outputs)."""
    support = tuple(range(9))

    def value(m: int) -> int:
        return (field(m, 0, 4) * field(m, 4, 4) + ((m >> 8) & 1)) & 0xFF

    return spec(
        "addm4", 9, word_outputs("y", support, value, 8),
        arithmetic=True,
        description="4x4 multiply-add with carry-in",
        substitution="exact MCNC addm4 table unavailable offline; "
        "regenerated as a*b + cin — a dense multiply-add matching addm4's "
        "published difficulty (only 6% improvement in the paper).",
    )
