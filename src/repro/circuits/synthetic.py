"""Seeded synthetic stand-ins for benchmarks with undocumented functions.

``cc``, ``cm163a``, ``f2``, ``frg1``, ``i1``, ``m181``, ``misg``, ``mish``
and ``pm1`` appear in Table 2 but their exact functions are not recoverable
without the MCNC distribution.  Each is regenerated as deterministic seeded
random logic with the published I/O counts and a character matching its
published behaviour under synthesis (mostly small-support AND/OR glue;
``frg1`` gets XOR-rich cells because the paper improves on it by 27%).
All generators draw from :func:`repro.utils.rng.deterministic_rng`, so the
suite is identical on every machine.  The ``substitution`` note on every
spec flags the stand-in.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.builders import spec
from repro.circuits.registry import register
from repro.expr import expression as ex
from repro.expr.cover import Cover
from repro.expr.cube import Cube
from repro.spec import CircuitSpec, OutputSpec
from repro.utils.rng import deterministic_rng

_NOTE = (
    "exact MCNC {name} function undocumented; regenerated as deterministic "
    "seeded {kind} with the published I/O counts."
)


def _random_cover(rng: np.random.Generator, width: int) -> Cover:
    """A small random SOP cover over ``width`` local variables."""
    num_cubes = int(rng.integers(2, 5))
    cubes = []
    for _ in range(num_cubes):
        pos = neg = 0
        for var in range(width):
            draw = rng.random()
            if draw < 0.35:
                pos |= 1 << var
            elif draw < 0.7:
                neg |= 1 << var
        if pos == 0 and neg == 0:
            pos = 1
        cubes.append(Cube(width, pos, neg))
    return Cover(width, tuple(cubes)).single_cube_containment()


def _random_support(rng: np.random.Generator, num_inputs: int,
                    width: int) -> tuple[int, ...]:
    chosen = rng.choice(num_inputs, size=width, replace=False)
    return tuple(int(v) for v in sorted(chosen))


def _sop_glue(name: str, num_inputs: int, num_outputs: int,
              min_support: int = 3, max_support: int = 6) -> CircuitSpec:
    rng = deterministic_rng(name)
    outputs = []
    for j in range(num_outputs):
        width = int(rng.integers(min_support, max_support + 1))
        width = min(width, num_inputs)
        support = _random_support(rng, num_inputs, width)
        outputs.append(
            OutputSpec(name=f"o{j}", support=support,
                       cover=_random_cover(rng, width))
        )
    return spec(name, num_inputs, outputs,
                description="seeded random two-level glue logic",
                substitution=_NOTE.format(name=name, kind="SOP glue logic"))


def _xor_rich(name: str, num_inputs: int, num_outputs: int,
              support_width: int = 8) -> CircuitSpec:
    """Random cells mixing XOR pairs with AND/OR context."""
    rng = deterministic_rng(name)
    outputs = []
    for j in range(num_outputs):
        width = min(support_width, num_inputs)
        support = _random_support(rng, num_inputs, width)
        terms: list[ex.Expr] = []
        for _ in range(int(rng.integers(2, 4))):
            a, b, c = (int(v) for v in rng.choice(width, size=3, replace=False))
            kind = rng.random()
            if kind < 0.5:
                terms.append(ex.and_([ex.Lit(a), ex.xor_([ex.Lit(b), ex.Lit(c)])]))
            else:
                terms.append(ex.and_([ex.Lit(a), ex.Lit(b)]))
        outputs.append(
            OutputSpec(name=f"o{j}", support=support, expr=ex.xor_(terms))
        )
    return spec(name, num_inputs, outputs,
                description="seeded XOR-rich random logic",
                substitution=_NOTE.format(name=name, kind="XOR-rich logic"))


@register("cc")
def cc() -> CircuitSpec:
    return _sop_glue("cc", 21, 20, 2, 4)


@register("cm163a")
def cm163a() -> CircuitSpec:
    return _sop_glue("cm163a", 16, 5, 4, 6)


@register("f2")
def f2() -> CircuitSpec:
    return _sop_glue("f2", 4, 4, 3, 4)


@register("frg1")
def frg1() -> CircuitSpec:
    return _xor_rich("frg1", 28, 3, 12)


@register("i1")
def i1() -> CircuitSpec:
    return _sop_glue("i1", 25, 13, 2, 4)


@register("m181")
def m181() -> CircuitSpec:
    return _sop_glue("m181", 15, 9, 3, 6)


@register("misg")
def misg() -> CircuitSpec:
    return _sop_glue("misg", 56, 23, 2, 4)


@register("mish")
def mish() -> CircuitSpec:
    return _sop_glue("mish", 94, 34, 2, 4)


@register("pm1")
def pm1() -> CircuitSpec:
    return _sop_glue("pm1", 16, 13, 2, 4)
