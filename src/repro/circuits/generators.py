"""Parameterized circuit generators (public API).

The fixed benchmark registry reproduces Table 2; these factories let
users build arbitrary-size instances of the same circuit families for
scaling studies — the `examples/adder_family.py` sweep uses
:func:`make_adder`.

All generators return ordinary :class:`~repro.spec.CircuitSpec` objects,
so everything downstream (both flows, mapping, power, testability)
applies unchanged.
"""

from __future__ import annotations

from repro.circuits.builders import expr_output, field, spec, table_output, word_outputs
from repro.expr import expression as ex
from repro.spec import CircuitSpec

_DENSE_LIMIT = 16


def make_adder(nbits: int, carry_in: bool = False) -> CircuitSpec:
    """An ``nbits``-bit adder; dense tables up to 8 bits, ripple
    expressions (with the diagram-friendly interleaved support) beyond."""
    if nbits < 1:
        raise ValueError("adder needs at least one bit")
    extra = 1 if carry_in else 0
    total_inputs = 2 * nbits + extra
    if total_inputs <= _DENSE_LIMIT:
        support = tuple(range(total_inputs))

        def value(m: int) -> int:
            carry = (m >> (2 * nbits)) & 1 if carry_in else 0
            return field(m, 0, nbits) + field(m, nbits, nbits) + carry

        outputs = word_outputs("s", support, value, nbits + 1)
        outputs[-1].name = "cout"
        return spec(f"adder{nbits}", total_inputs, outputs, arithmetic=True,
                    description=f"{nbits}-bit adder")
    return _ripple_adder(nbits, carry_in)


def _ripple_adder(nbits: int, carry_in: bool) -> CircuitSpec:
    total_inputs = 2 * nbits + (1 if carry_in else 0)

    def slice_support(bits: int) -> tuple[int, ...]:
        order: list[int] = [2 * nbits] if carry_in else []
        for k in range(bits):
            order += [k, nbits + k]
        return tuple(order)

    def ripple(bits: int):
        offset = 1 if carry_in else 0
        a = [ex.Lit(offset + 2 * k) for k in range(bits)]
        b = [ex.Lit(offset + 2 * k + 1) for k in range(bits)]
        carry: ex.Expr = ex.Lit(0) if carry_in else ex.FALSE
        for k in range(bits - 1):
            carry = ex.or_([
                ex.and_([a[k], b[k]]),
                ex.and_([ex.xor_([a[k], b[k]]), carry]),
            ])
        return a, b, carry

    outputs = []
    for i in range(nbits):
        a, b, carry = ripple(i + 1)
        outputs.append(
            expr_output(f"s{i}", slice_support(i + 1),
                        ex.xor_([a[i], b[i], carry]))
        )
    a, b, carry = ripple(nbits)
    k = nbits - 1
    cout = ex.or_([
        ex.and_([a[k], b[k]]), ex.and_([ex.xor_([a[k], b[k]]), carry])
    ])
    outputs.append(expr_output("cout", slice_support(nbits), cout))
    return spec(f"adder{nbits}", total_inputs, outputs, arithmetic=True,
                description=f"{nbits}-bit ripple adder")


def make_multiplier(nbits: int) -> CircuitSpec:
    """An ``nbits`` × ``nbits`` multiplier (dense; nbits ≤ 8)."""
    if not 1 <= nbits <= _DENSE_LIMIT // 2:
        raise ValueError("multiplier supports 1..8 bits per operand")
    support = tuple(range(2 * nbits))

    def product(m: int) -> int:
        return field(m, 0, nbits) * field(m, nbits, nbits)

    return spec(f"mult{nbits}", 2 * nbits,
                word_outputs("p", support, product, 2 * nbits),
                arithmetic=True, description=f"{nbits}x{nbits} multiplier")


def make_comparator(nbits: int) -> CircuitSpec:
    """Magnitude comparator: gt / lt / eq of two ``nbits``-bit words."""
    if not 1 <= 2 * nbits <= _DENSE_LIMIT:
        raise ValueError("comparator supports 1..8 bits per operand")
    support = tuple(range(2 * nbits))

    def words(m: int) -> tuple[int, int]:
        return field(m, 0, nbits), field(m, nbits, nbits)

    outputs = [
        table_output("gt", support, lambda m: int(words(m)[0] > words(m)[1])),
        table_output("lt", support, lambda m: int(words(m)[0] < words(m)[1])),
        table_output("eq", support, lambda m: int(words(m)[0] == words(m)[1])),
    ]
    return spec(f"cmp{nbits}", 2 * nbits, outputs, arithmetic=True,
                description=f"{nbits}-bit magnitude comparator")


def make_parity(nbits: int) -> CircuitSpec:
    """An ``nbits``-input parity tree (structural XOR specification)."""
    if nbits < 1:
        raise ValueError("parity needs at least one input")
    out = expr_output("p", tuple(range(nbits)),
                      ex.xor_([ex.Lit(i) for i in range(nbits)]))
    return spec(f"parity{nbits}", nbits, [out], arithmetic=True,
                description=f"{nbits}-input parity")


def make_weight(nbits: int) -> CircuitSpec:
    """The rdXX family: binary weight of ``nbits`` inputs (nbits ≤ 16)."""
    if not 1 <= nbits <= _DENSE_LIMIT:
        raise ValueError("weight counter supports 1..16 inputs")
    out_bits = max(1, nbits.bit_length())
    support = tuple(range(nbits))
    return spec(f"weight{nbits}", nbits,
                word_outputs("w", support, lambda m: m.bit_count(), out_bits),
                arithmetic=True,
                description=f"weight of {nbits} inputs")
