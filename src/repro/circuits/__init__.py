"""The IWLS'91-style benchmark circuit suite, regenerated.

The MCNC/IWLS'91 distribution is not available offline; every circuit of
the paper's Table 2 is regenerated here from a functional definition (for
the documented arithmetic and structured circuits) or from a deterministic
seeded generator matching the published I/O counts (for the circuits whose
function is undocumented).  Each :class:`~repro.spec.CircuitSpec` carries a
``substitution`` note when the definition is a stand-in.

>>> from repro import circuits
>>> circuits.get("z4ml").num_outputs
4
"""

from repro.circuits.registry import (
    all_names,
    arithmetic_names,
    extension_names,
    get,
    register,
)

# Importing the generator modules populates the registry.
from repro.circuits import arithmetic as _arithmetic  # noqa: F401
from repro.circuits import symmetric as _symmetric  # noqa: F401
from repro.circuits import misc as _misc  # noqa: F401
from repro.circuits import synthetic as _synthetic  # noqa: F401
from repro.circuits import coding as _coding  # noqa: F401

__all__ = [
    "all_names",
    "arithmetic_names",
    "extension_names",
    "get",
    "register",
]
