"""Coding-theory extension circuits (beyond Table 2).

The paper's conclusions single out "error checking circuits and functions
related to coding theory" as natural targets — these circuits are defined
over GF(2), so their FPRM forms *are* their specifications.  This module
adds demonstrators exercising that claim: Hamming(7,4) encoding and
syndrome decoding, a CRC-4 checksum slice, and a two-dimensional parity
checker.  They register as *extension* circuits (not part of the paper's
Table 2 set).
"""

from __future__ import annotations

from repro.circuits.builders import bit, spec, table_output
from repro.circuits.registry import register
from repro.spec import CircuitSpec

# Hamming(7,4): data d0..d3, parity bits p0 p1 p2 with the classic
# positions; codeword = (p0 p1 d0 p2 d1 d2 d3).
_H_ROWS = (
    0b1011,  # p0 = d0 ⊕ d1 ⊕ d3
    0b1101,  # p1 = d0 ⊕ d2 ⊕ d3
    0b1110,  # p2 = d1 ⊕ d2 ⊕ d3
)


def _parity_of(value: int) -> int:
    return value.bit_count() & 1


@register("hamming7_enc", extension=True)
def hamming7_enc() -> CircuitSpec:
    """Hamming(7,4) encoder: 4 data bits → 3 parity bits."""
    support = (0, 1, 2, 3)
    outputs = [
        table_output(
            f"p{i}", support, lambda m, row=row: _parity_of(m & row)
        )
        for i, row in enumerate(_H_ROWS)
    ]
    return spec("hamming7_enc", 4, outputs, arithmetic=True,
                description="Hamming(7,4) parity generator")


@register("hamming7_syn", extension=True)
def hamming7_syn() -> CircuitSpec:
    """Hamming(7,4) syndrome: 7 received bits → 3 syndrome bits.

    Input order: d0 d1 d2 d3 p0 p1 p2; syndrome bit i is the recomputed
    parity XOR the received parity bit.
    """
    support = tuple(range(7))
    outputs = [
        table_output(
            f"s{i}", support,
            lambda m, i=i, row=_H_ROWS[i]: _parity_of(m & row) ^ bit(m, 4 + i),
        )
        for i in range(3)
    ]
    return spec("hamming7_syn", 7, outputs, arithmetic=True,
                description="Hamming(7,4) syndrome computation")


@register("hamming7_cor", extension=True)
def hamming7_cor() -> CircuitSpec:
    """Hamming(7,4) single-error corrector: received word → corrected data.

    Decodes the syndrome and flips the matching data bit; a mix of XOR
    (syndrome) and AND/OR (decode) logic — the structure the redundancy
    removal is designed for.
    """
    support = tuple(range(7))

    def corrected(m: int, j: int) -> int:
        syndrome = tuple(
            _parity_of(m & row) ^ bit(m, 4 + i)
            for i, row in enumerate(_H_ROWS)
        )
        received = bit(m, j)
        # Data bit j is flipped when the syndrome points at it: the
        # syndrome equals the column of H for data bit j.
        column = tuple((row >> j) & 1 for row in _H_ROWS)
        flip = int(syndrome == column and any(syndrome))
        return received ^ flip

    outputs = [
        table_output(f"d{j}", support, lambda m, j=j: corrected(m, j))
        for j in range(4)
    ]
    return spec("hamming7_cor", 7, outputs, arithmetic=True,
                description="Hamming(7,4) single-error data corrector")


@register("crc4", extension=True)
def crc4() -> CircuitSpec:
    """CRC-4 (x^4 + x + 1) of an 8-bit message, combinational.

    Each checksum bit is a fixed XOR of message bits — pure GF(2) linear
    algebra, the extreme FPRM-friendly case.
    """
    poly = 0b10011
    support = tuple(range(8))

    def crc_bits(m: int) -> int:
        register_value = m << 4
        for shift in range(11, 3, -1):
            if (register_value >> shift) & 1:
                register_value ^= poly << (shift - 4)
        return register_value & 0xF

    outputs = [
        table_output(f"c{j}", support, lambda m, j=j: (crc_bits(m) >> j) & 1)
        for j in range(4)
    ]
    return spec("crc4", 8, outputs, arithmetic=True,
                description="CRC-4 checksum of an 8-bit message")


@register("parity2d", extension=True)
def parity2d() -> CircuitSpec:
    """Two-dimensional parity over a 3x3 bit array (rows, columns, total)."""
    support = tuple(range(9))
    outputs = []
    for r in range(3):
        mask = 0b111 << (3 * r)
        outputs.append(
            table_output(f"row{r}", support,
                         lambda m, mask=mask: _parity_of(m & mask))
        )
    for c in range(3):
        mask = (1 << c) | (1 << (c + 3)) | (1 << (c + 6))
        outputs.append(
            table_output(f"col{c}", support,
                         lambda m, mask=mask: _parity_of(m & mask))
        )
    outputs.append(
        table_output("all", support, lambda m: _parity_of(m & 0x1FF))
    )
    return spec("parity2d", 9, outputs, arithmetic=True,
                description="2-D parity checker over a 3x3 array")
