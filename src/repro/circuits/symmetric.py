"""Symmetric and parity benchmark circuits.

Weight functions (rdXX), symmetry detectors (9sym/sym10), majority and the
parity trees — the class of functions whose FPRM forms are dramatically
smaller than their SOP covers.
"""

from __future__ import annotations

from repro.circuits.builders import (
    expr_output,
    field,
    popcount,
    spec,
    table_output,
    word_outputs,
)
from repro.circuits.registry import register
from repro.expr import expression as ex
from repro.spec import CircuitSpec


def _rd(name: str, inputs: int, out_bits: int) -> CircuitSpec:
    support = tuple(range(inputs))
    outputs = word_outputs("w", support, popcount, out_bits)
    return spec(name, inputs, outputs, arithmetic=True,
                description=f"binary weight of {inputs} inputs")


@register("rd53")
def rd53() -> CircuitSpec:
    return _rd("rd53", 5, 3)


@register("rd73")
def rd73() -> CircuitSpec:
    return _rd("rd73", 7, 3)


@register("rd84")
def rd84() -> CircuitSpec:
    return _rd("rd84", 8, 4)


@register("9sym")
def ninesym() -> CircuitSpec:
    """1 iff the input weight is between 3 and 6 (9 inputs)."""
    support = tuple(range(9))
    out = table_output("f", support, lambda m: int(3 <= popcount(m) <= 6))
    return spec("9sym", 9, [out], arithmetic=True,
                description="totally symmetric: 3 <= weight <= 6")


@register("sym10")
def sym10() -> CircuitSpec:
    """1 iff the input weight is between 3 and 6 (10 inputs)."""
    support = tuple(range(10))
    out = table_output("f", support, lambda m: int(3 <= popcount(m) <= 6))
    return spec("sym10", 10, [out], arithmetic=True,
                description="totally symmetric: 3 <= weight <= 6")


@register("majority")
def majority() -> CircuitSpec:
    support = tuple(range(5))
    out = table_output("f", support, lambda m: int(popcount(m) >= 3))
    return spec("majority", 5, [out], arithmetic=True,
                description="5-input majority")


@register("parity")
def parity() -> CircuitSpec:
    """16-input parity, specified structurally (a tree of XORs) like the
    IWLS'91 multilevel benchmark entry."""
    support = tuple(range(16))
    out = expr_output("f", support, ex.xor_([ex.Lit(i) for i in range(16)]))
    return spec("parity", 16, [out], arithmetic=True,
                description="16-input parity tree")


@register("xor10")
def xor10() -> CircuitSpec:
    """10-input parity (structural XOR tree)."""
    support = tuple(range(10))
    out = expr_output("f", support, ex.xor_([ex.Lit(i) for i in range(10)]))
    return spec("xor10", 10, [out], arithmetic=True,
                description="10-input parity")


@register("co14")
def co14() -> CircuitSpec:
    """Equality of two 7-bit words (14 inputs, 1 output)."""
    support = tuple(range(14))
    out = table_output(
        "eq", support, lambda m: int(field(m, 0, 7) == field(m, 7, 7))
    )
    return spec("co14", 14, [out], arithmetic=True,
                description="7-bit equality comparator",
                substitution="exact MCNC co14 function undocumented; "
                "regenerated as a 7-bit comparator — an XNOR-rich "
                "single-output function of the same I/O shape.")
