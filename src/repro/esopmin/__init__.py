"""Mixed-polarity ESOP minimization (EXORCISM-style).

The FPRM forms the paper synthesizes from are the *fixed-polarity*
subclass of AND-XOR expressions; dropping the polarity restriction
(general ESOPs, cf. Sasao's AND-EXOR chapters the paper cites) can only
shrink the cube count.  This package provides an iterative cube-pair
minimizer in the spirit of EXORCISM — distance-0 cancellation, distance-1
merging, and exorlink-2 reshaping — used by the ablation study comparing
FPRM starting points against unrestricted ESOPs.
"""

from repro.esopmin.exorcism import esop_from_fprm, minimize_esop

__all__ = ["esop_from_fprm", "minimize_esop"]
