"""Iterative ESOP minimization by cube-pair transformations.

Cube state per variable: positive literal, negative literal, or absent.
For two cubes at distance d (number of variables whose states differ):

* d = 0 — identical cubes cancel (``C ⊕ C = 0``);
* d = 1 — the pair merges into one cube whose differing variable takes
  the *merge state*: ``{pos,neg} → absent``, ``{pos,absent} → neg``,
  ``{neg,absent} → pos`` (e.g. ``x·C ⊕ C = x̄·C``);
* d = 2 — exorlink-2 rewrites the pair into another pair of the same
  total size, which can unlock further d ≤ 1 reductions:

      A ⊕ B = [aᵤ, m(a_v,b_v), R] ⊕ [m(aᵤ,bᵤ), b_v, R]

  (derived from ``a_u a_v ⊕ b_u b_v = a_u(a_v ⊕ b_v) ⊕ (a_u ⊕ b_u)b_v``).

The minimizer applies d ≤ 1 reductions to a fixpoint, then greedily
accepts exorlink-2 rewrites that enable an immediate reduction, for a
bounded number of rounds.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BudgetExceededError
from repro.expr.cube import Cube
from repro.expr.esop import EsopCover, FprmForm
from repro.expr.kernels import CoverMatrix, kernels_enabled
from repro.obs.spans import span as obs_span
from repro.resilience.budget import (
    budget_tick,
    budget_tick_many,
    current_budget,
    note_degradation,
)
from repro.utils.bitops import bit_indices

_MAX_ROUNDS = 12

#: Below this cover size the numpy setup cost of the matrix scans beats
#: their win; the scalar loops stay in charge.  Pure perf cutoff — both
#: paths are bit-identical, so the threshold never changes results.
_KERNEL_MIN_CUBES = 8


def esop_from_fprm(form: FprmForm) -> EsopCover:
    """An FPRM form as a general (mixed-polarity) ESOP."""
    return EsopCover(form.n, form.cube_objects())


def minimize_esop(cover: EsopCover, rounds: int = _MAX_ROUNDS) -> EsopCover:
    """Minimize cube count (then literal count) of an ESOP.

    The quadratic pair scans check the ambient run budget cooperatively;
    on exhaustion the cover minimized *so far* is returned (every
    intermediate state of the reduce/exorlink rewrites represents the
    same function, so a truncated run is correct — just larger).  Exact
    AND-XOR minimization is known to blow up on adversarial instances,
    which is precisely why this loop must be interruptible.
    """
    cubes = list(cover.cubes)
    trajectory = [len(cubes)]
    degraded = False
    with obs_span("esop-minimize", category="algo") as node:
        try:
            budget = current_budget()
            if budget is not None:
                # Entry check: small covers finish under the tick stride,
                # so an exhausted budget must degrade here, not in-loop.
                budget.check("esop-minimize")
            for _ in range(rounds):
                cubes, changed_merge = _reduce_pass(cover.n, cubes)
                changed_link = _exorlink_pass(cover.n, cubes)
                trajectory.append(len(cubes))
                if not changed_merge and not changed_link:
                    break
        except BudgetExceededError as err:
            degraded = True
            note_degradation("esop-minimize", "partial-minimization",
                             err.where)
            trajectory.append(len(cubes))
        if node is not None:
            node.set(
                cubes_in=trajectory[0],
                cubes_out=len(cubes),
                rounds=len(trajectory) - 1,
                trajectory=trajectory,
                degraded=degraded,
            )
    return EsopCover(cover.n, tuple(cubes))


def _state(cube: Cube, var: int) -> int:
    bit = 1 << var
    if cube.pos & bit:
        return 1
    if cube.neg & bit:
        return 2
    return 0


def _with_state(cube: Cube, var: int, state: int) -> Cube:
    bit = 1 << var
    pos = cube.pos & ~bit
    neg = cube.neg & ~bit
    if state == 1:
        pos |= bit
    elif state == 2:
        neg |= bit
    return Cube(cube.n, pos, neg)


def _merge_state(a: int, b: int) -> int:
    # XOR of the per-variable state functions: {x, x̄, 1}.
    return {frozenset({1, 2}): 0, frozenset({1, 0}): 2,
            frozenset({2, 0}): 1}[frozenset({a, b})]


def _difference_vars(a: Cube, b: Cube) -> list[int]:
    mask = (a.pos ^ b.pos) | (a.neg ^ b.neg)
    return list(bit_indices(mask))


def _lex_pair_rank(k: int, i: int, j: int) -> int:
    """1-based position of ``(i, j)`` in the upper-triangle scan order —
    how many pairs the scalar loops visit up to and including the hit."""
    return i * (2 * k - i - 1) // 2 + (j - i)


def _first_reducible_pair(cubes: list[Cube]) -> tuple[int, int] | None:
    """Lexicographically first pair at ESOP distance ≤ 1, via one matrix
    scan (the selection the scalar ``_reduce_pass`` loops perform)."""
    k = len(cubes)
    matrix = CoverMatrix.from_cubes(cubes[0].n, cubes)
    hits = matrix.esop_distance_matrix() <= 1
    hits[np.tril_indices(k)] = False
    flat = np.flatnonzero(hits.ravel())
    if flat.size == 0:
        return None
    return divmod(int(flat[0]), k)


def _reduce_pair(cubes: list[Cube], i: int, j: int) -> None:
    """Apply the scalar d ≤ 1 rewrite to the pair ``(i, j)`` in place."""
    diff = _difference_vars(cubes[i], cubes[j])
    if len(diff) == 0:
        del cubes[j], cubes[i]
    else:
        var = diff[0]
        merged = _with_state(
            cubes[i], var,
            _merge_state(_state(cubes[i], var), _state(cubes[j], var)),
        )
        del cubes[j], cubes[i]
        cubes.append(merged)


def _reduce_pass(n: int, cubes: list[Cube]) -> tuple[list[Cube], bool]:
    """Cancel d=0 pairs and merge d=1 pairs until no pair qualifies."""
    if kernels_enabled() and len(cubes) >= _KERNEL_MIN_CUBES:
        return _reduce_pass_kernel(n, cubes)
    changed = False
    progress = True
    while progress:
        progress = False
        for i in range(len(cubes)):
            for j in range(i + 1, len(cubes)):
                # Checked before any rewrite, so an interrupt always
                # leaves a function-preserving intermediate cover.
                budget_tick("esop-reduce")
                diff = _difference_vars(cubes[i], cubes[j])
                if len(diff) == 0:
                    del cubes[j], cubes[i]
                    progress = changed = True
                    break
                if len(diff) == 1:
                    var = diff[0]
                    merged = _with_state(
                        cubes[i], var,
                        _merge_state(_state(cubes[i], var),
                                     _state(cubes[j], var)),
                    )
                    del cubes[j], cubes[i]
                    cubes.append(merged)
                    progress = changed = True
                    break
            if progress:
                break
    return cubes, changed


def _reduce_pass_kernel(n: int, cubes: list[Cube]) -> tuple[list[Cube], bool]:
    """Matrix-selected :func:`_reduce_pass` (bit-identical rewrites).

    Each iteration finds the same pair the scalar scan would act on —
    the lexicographically first at distance ≤ 1 — then applies the
    scalar rewrite.  Budget accounting matches the pairs the scalar
    loops would have visited.
    """
    changed = False
    while len(cubes) >= 2:
        hit = _first_reducible_pair(cubes)
        k = len(cubes)
        if hit is None:
            budget_tick_many("esop-reduce", k * (k - 1) // 2)
            break
        i, j = hit
        budget_tick_many("esop-reduce", _lex_pair_rank(k, i, j))
        _reduce_pair(cubes, i, j)
        changed = True
    return cubes, changed


def _exorlink_pass(n: int, cubes: list[Cube]) -> bool:
    """Greedy exorlink-2: accept a rewrite if it enables a d≤1 reduction."""
    if kernels_enabled() and len(cubes) >= _KERNEL_MIN_CUBES:
        return _exorlink_pass_kernel(n, cubes)
    for i in range(len(cubes)):
        for j in range(i + 1, len(cubes)):
            budget_tick("esop-exorlink")
            diff = _difference_vars(cubes[i], cubes[j])
            if len(diff) != 2:
                continue
            u, v = diff
            for first, second in ((u, v), (v, u)):
                a, b = cubes[i], cubes[j]
                new_a = _with_state(
                    a, second,
                    _merge_state(_state(a, second), _state(b, second)),
                )
                new_b = _with_state(
                    b, first,
                    _merge_state(_state(a, first), _state(b, first)),
                )
                if _enables_reduction(cubes, i, j, new_a, new_b):
                    cubes[i] = new_a
                    cubes[j] = new_b
                    return True
    return False


def _exorlink_pass_kernel(n: int, cubes: list[Cube]) -> bool:
    """Matrix-selected :func:`_exorlink_pass` (bit-identical rewrites).

    One distance matrix yields the d=2 candidate pairs in the scalar
    scan order; the exorlink rewrite and its acceptance test keep the
    scalar cube algebra, with the enables-a-reduction probe batched as
    two distance-to-cube sweeps.
    """
    k = len(cubes)
    matrix = CoverMatrix.from_cubes(n, cubes)
    accounted = 0
    for i, j in matrix.exorlink_pairs(distance=2):
        rank = _lex_pair_rank(k, i, j)
        budget_tick_many("esop-exorlink", rank - accounted)
        accounted = rank
        a, b = cubes[i], cubes[j]
        u, v = _difference_vars(a, b)
        for first, second in ((u, v), (v, u)):
            new_a = _with_state(
                a, second,
                _merge_state(_state(a, second), _state(b, second)),
            )
            new_b = _with_state(
                b, first,
                _merge_state(_state(a, first), _state(b, first)),
            )
            if _enables_reduction_kernel(matrix, i, j, new_a, new_b):
                cubes[i] = new_a
                cubes[j] = new_b
                return True
    budget_tick_many("esop-exorlink", k * (k - 1) // 2 - accounted)
    return False


def _enables_reduction_kernel(matrix: CoverMatrix, i: int, j: int,
                              new_a: Cube, new_b: Cube) -> bool:
    """Vectorized :func:`_enables_reduction` over the pass matrix."""
    near = (matrix.esop_distance_to(new_a.pos, new_a.neg) <= 1) | (
        matrix.esop_distance_to(new_b.pos, new_b.neg) <= 1
    )
    near[i] = near[j] = False
    if bool(near.any()):
        return True
    return _cube_esop_distance(new_a, new_b) <= 1


def _cube_esop_distance(a: Cube, b: Cube) -> int:
    return (((a.pos ^ b.pos) | (a.neg ^ b.neg))).bit_count()


def _enables_reduction(cubes: list[Cube], i: int, j: int,
                       new_a: Cube, new_b: Cube) -> bool:
    for index, other in enumerate(cubes):
        if index in (i, j):
            continue
        for candidate in (new_a, new_b):
            if len(_difference_vars(candidate, other)) <= 1:
                return True
    return len(_difference_vars(new_a, new_b)) <= 1
